"""The Zhuyi model — the paper's primary contribution.

This package implements Section 2 of the paper:

* :mod:`repro.core.parameters` — the model constants (C1-C4, K, M, L, ...).
* :mod:`repro.core.ego_profile` — closed forms for the ego's reaction and
  braking travel (``d_e1``, ``d_e2``, ``v_en``).
* :mod:`repro.core.threat` — turning an actor's predicted motion into the
  longitudinal quantities ``s_n(t)`` and ``v_an(t)`` of Equations 1-2.
* :mod:`repro.core.latency` — the tolerable-latency search (Equations 1-3).
* :mod:`repro.core.engine` — the batched latency kernel (the whole
  actors x latency-grid problem of a tick as one array program).
* :mod:`repro.core.aggregation` — Equation 4 (multi-trajectory aggregation).
* :mod:`repro.core.fpr` — Equation 5 (per-camera processing rate).
* :mod:`repro.core.evaluator` — the pre-deployment offline evaluator.
* :mod:`repro.core.online` — the post-deployment online estimator.
* :mod:`repro.core.compute` — the Section 4.2 compute-demand model.
"""

from repro.core.parameters import ZhuyiParams
from repro.core.ego_profile import (
    EgoMotion,
    braking_deceleration,
    ego_profile_arrays,
)
from repro.core.threat import (
    CorridorSpec,
    FixedGapThreat,
    LongitudinalThreat,
    ThreatAssessor,
    TrajectoryThreat,
    sample_grid,
)
from repro.core.latency import (
    BACKENDS,
    LatencyResult,
    LatencySearch,
    SearchStrategy,
    UNAVOIDABLE_LATENCY,
)
from repro.core.engine import LatencyEngine
from repro.core.aggregation import (
    aggregate_latencies,
    Aggregator,
    MaxAggregator,
    MeanAggregator,
    PercentileAggregator,
)
from repro.core.fpr import CameraEstimate, fpr_from_latency, estimate_camera_fprs
from repro.core.evaluator import (
    EvaluationSeries,
    EvaluationTick,
    OfflineEvaluator,
    TraceSamples,
    presample_trace,
)
from repro.core.online import OnlineEstimator
from repro.core.compute import ComputeDemandModel

__all__ = [
    "ZhuyiParams",
    "EgoMotion",
    "braking_deceleration",
    "ego_profile_arrays",
    "LongitudinalThreat",
    "FixedGapThreat",
    "TrajectoryThreat",
    "ThreatAssessor",
    "CorridorSpec",
    "BACKENDS",
    "LatencyEngine",
    "LatencyResult",
    "LatencySearch",
    "SearchStrategy",
    "UNAVOIDABLE_LATENCY",
    "sample_grid",
    "Aggregator",
    "MaxAggregator",
    "MeanAggregator",
    "PercentileAggregator",
    "aggregate_latencies",
    "CameraEstimate",
    "fpr_from_latency",
    "estimate_camera_fprs",
    "OfflineEvaluator",
    "EvaluationSeries",
    "EvaluationTick",
    "TraceSamples",
    "presample_trace",
    "OnlineEstimator",
    "ComputeDemandModel",
]
