"""Post-deployment online estimation (Section 3.2).

"The ego and actors current states are obtained from the perceived world
model, and future states are obtained from predicted trajectories."

Per call the estimator asks the predictor for a probabilistic set of
futures per confirmed actor, solves the tolerable latency against each
future, aggregates with Equation 4 (percentile by default) and produces
Equation 5 per-camera estimates grouped by FOV at the perceived actor
positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.aggregation import Aggregator, PercentileAggregator
from repro.core.ego_profile import EgoMotion
from repro.core.engine import LatencyEngine
from repro.core.evaluator import (
    EvaluationSeries,
    EvaluationTick,
    presample_trace,
)
from repro.core.fpr import estimate_camera_fprs
from repro.core.latency import (
    BACKENDS,
    LatencySearch,
    SearchStrategy,
    UNAVOIDABLE_LATENCY,
)
from repro.core.parameters import ZhuyiParams
from repro.core.threat import LongitudinalThreat, ThreatAssessor
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import EstimationError
from repro.perception.sensor import CameraRig, default_rig
from repro.perception.world_model import PerceivedActor, WorldModel
from repro.prediction.base import Predictor
from repro.road.track import Road
from repro.sim.trace import ScenarioTrace


@dataclass(frozen=True)
class _MarginThreat:
    """Decorator shrinking the gap — the perception-uncertainty extension.

    Wraps any threat and subtracts a safety margin from ``s_n``,
    modelling position uncertainty in the perceived world model. This is
    the hook the paper's future-work section sketches ("extended to
    account for perception uncertainty").
    """

    inner: LongitudinalThreat
    margin: float

    def gap_at(self, t: float) -> float:
        return max(0.0, self.inner.gap_at(t) - self.margin)

    def actor_speed_at(self, t: float) -> float:
        return self.inner.actor_speed_at(t)

    def sample(self, times):
        gaps, speeds = self.inner.sample(times)
        return np.maximum(0.0, gaps - self.margin), speeds


@dataclass
class OnlineEstimator:
    """The Zhuyi block of Figure 3: world model + predictions in, FPRs out.

    Attributes:
        params: the Zhuyi constants.
        predictor: trajectory predictor supplying the set ``T`` of Eq 4.
        rig: camera rig for FOV grouping.
        aggregator: Equation 4 reduction (paper default: 99th percentile).
        road: road geometry for threat gating.
        search: per-actor latency solver.
        gap_margin: optional perception-uncertainty margin subtracted
            from every gap (metres); 0 disables the extension.
        assumed_actor_spec: physical spec attributed to perceived actors
            (the world model carries no extent information).
        backend: ``"batched"`` (default) solves the tick's full batch —
            every predicted future of every confirmed actor — in one
            :class:`repro.core.engine.LatencyEngine` call; ``"scalar"``
            loops the reference search. Bit-identical estimates.
    """

    params: ZhuyiParams
    predictor: Predictor
    rig: CameraRig = field(default_factory=default_rig)
    aggregator: Aggregator = field(default_factory=PercentileAggregator)
    road: Road | None = None
    search: LatencySearch | None = None
    gap_margin: float = 0.0
    assumed_actor_spec: VehicleSpec = field(default_factory=VehicleSpec)
    backend: str = "batched"

    def __post_init__(self) -> None:
        if self.gap_margin < 0.0:
            raise EstimationError("gap margin must be non-negative")
        if self.backend not in BACKENDS:
            raise EstimationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.search is None:
            self.search = LatencySearch(params=self.params)
        self._engine = None
        if (
            self.backend == "batched"
            and self.search.strategy is SearchStrategy.EXACT
        ):
            self._engine = LatencyEngine(
                params=self.search.params, strict=self.search.strict
            )

    def estimate(
        self,
        now: float,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        world_model: WorldModel,
        l0: float,
        visibility: Mapping[str, Sequence[Hashable]] | None = None,
    ) -> EvaluationTick:
        """One online estimation tick.

        Args:
            now: current time (seconds).
            ego_state: the ego's (localized) state.
            ego_spec: the ego's physical spec.
            world_model: confirmed perceived actors.
            l0: the perception stack's current processing latency (s).
            visibility: precomputed Equation 5 FOV grouping for this
                tick (the :meth:`replay` batch path passes one slice of
                the trace-level visibility tables); ``None`` groups
                per-tick through ``rig.visible_actors``.

        Returns:
            The same tick structure the offline evaluator produces, so
            downstream consumers (safety check, prioritization, figures)
            are agnostic to where estimates came from.
        """
        assessor = ThreatAssessor(params=self.params, road=self.road)
        ego_motion = EgoMotion.from_state(
            ego_state.speed, ego_state.accel, self.params
        )

        # First pass: assess every predicted future of every confirmed
        # actor, collecting the tick's full threat batch.
        actor_positions = {}
        per_actor: list[tuple[str, list[tuple[float, object | None]]]] = []
        for perceived in world_model:
            actor_positions[perceived.actor_id] = perceived.position
            predictions = self.predictor.predict(
                perceived, now, self.params.horizon
            )
            entries: list[tuple[float, object | None]] = []
            for prediction in predictions:
                threat = assessor.assess(
                    ego_state,
                    ego_spec,
                    prediction.trajectory,
                    self.assumed_actor_spec,
                    t0=now,
                )
                if threat is not None and self.gap_margin > 0.0:
                    threat = _MarginThreat(
                        inner=threat, margin=self.gap_margin
                    )
                entries.append((prediction.probability, threat))
            per_actor.append((perceived.actor_id, entries))

        # One kernel call covers the whole tick (all actors, all
        # futures); the scalar backend loops in the same order.
        batch = [
            threat
            for _, entries in per_actor
            for _, threat in entries
            if threat is not None
        ]
        if self._engine is not None:
            solved = iter(self._engine.solve_batch(ego_motion, batch, l0))
        else:
            solved = iter(
                self.search.tolerable_latency(ego_motion, threat, l0)
                for threat in batch
            )

        actor_latencies: dict[str, float | None] = {}
        for actor_id, entries in per_actor:
            is_threat, latency = self._aggregate(entries, solved)
            if is_threat:
                actor_latencies[actor_id] = latency

        if visibility is None:
            visibility = self.rig.visible_actors(ego_state, actor_positions)
        estimates = estimate_camera_fprs(actor_latencies, visibility, self.params)
        return EvaluationTick(
            time=now,
            camera_estimates=estimates,
            actor_latencies=actor_latencies,
            ego_speed=ego_state.speed,
            ego_accel=ego_state.accel,
        )

    def replay(
        self,
        trace: ScenarioTrace,
        l0: float | None = None,
        period: float = 0.1,
    ) -> EvaluationSeries:
        """Post-deployment replay of a recorded trace.

        The trace-level counterpart of calling :meth:`estimate` in a
        loop: the recorded ground truth stands in for a perfect
        perception stack (every actor confirmed, zero staleness — the
        replay isolates the *estimation* layer from detection noise, the
        trace-level fault-injection style of Antonante et al. 2023), the
        predictor supplies each actor's future set at every tick, and
        Equations 4-5 aggregate exactly as they do live. With
        ``backend="batched"`` the Equation 5 FOV grouping for the whole
        replay comes from one
        :meth:`repro.perception.sensor.CameraRig.visible_actors_trace`
        array program and each tick's futures solve through the batched
        engine; ``"scalar"`` replays the per-tick reference loop. The
        two are bit-identical.

        Args:
            trace: the recorded closed-loop run.
            l0: processing latency entering the model; defaults to one
                frame period of the trace's recorded FPR setting.
            period: estimation cadence along the trace (seconds).

        Returns:
            The replayed tick series (same structure as the offline
            evaluator's output).
        """
        if l0 is None:
            l0 = trace.default_l0()
        # The offline evaluator's presampler supplies the tick grid and
        # the per-tick states/positions, so replay ticks land on exactly
        # the grid an OfflineEvaluator with stride=period evaluates.
        samples = presample_trace(trace, period)
        times = samples.times
        ego_states = samples.ego_states
        actor_states = samples.actor_states

        visibility_tables = None
        if self.backend == "batched":
            visibility_tables = self.rig.visible_actors_trace(
                ego_states, samples.actor_positions
            )

        ticks = []
        for i in range(len(times)):
            now = float(times[i])
            world = WorldModel()
            for actor_id, states in actor_states.items():
                state = states[i]
                world.upsert(
                    PerceivedActor(
                        actor_id=actor_id,
                        position=state.position,
                        velocity=state.velocity(),
                        heading=state.heading,
                        speed=state.speed,
                        accel=state.accel,
                        timestamp=now,
                    )
                )
            ticks.append(
                self.estimate(
                    now=now,
                    ego_state=ego_states[i],
                    ego_spec=trace.ego_spec,
                    world_model=world,
                    l0=l0,
                    visibility=(
                        None
                        if visibility_tables is None
                        else visibility_tables[i]
                    ),
                )
            )
        return EvaluationSeries(
            scenario=trace.scenario, ticks=ticks, params=self.params, l0=l0
        )

    def _aggregate(self, entries, solved) -> tuple[bool, float | None]:
        """``(is_threat, latency)`` — Eq 4 aggregate for one actor.

        ``entries`` pairs each predicted future's probability with its
        threat view (``None`` when the future was gated out); ``solved``
        yields the batch's :class:`LatencyResult` objects in the same
        order the threats were collected. ``is_threat`` is False when
        every future was gated out (the actor cannot collide under any
        hypothesis).
        """
        latencies: list[float] = []
        probabilities: list[float] = []
        any_threat = False
        for probability, threat in entries:
            if threat is None:
                # This future never collides: it contributes the most
                # permissive latency rather than disappearing.
                latencies.append(self.params.l_max)
                probabilities.append(probability)
                continue
            any_threat = True
            latencies.append(next(solved).latency_or_zero())
            probabilities.append(probability)

        if not any_threat:
            return False, None
        aggregated = self.aggregator.aggregate(latencies, probabilities)
        if aggregated <= UNAVOIDABLE_LATENCY:
            return True, None
        return True, aggregated
