"""Post-deployment online estimation (Section 3.2).

"The ego and actors current states are obtained from the perceived world
model, and future states are obtained from predicted trajectories."

Per call the estimator asks the predictor for a probabilistic set of
futures per confirmed actor, solves the tolerable latency against each
future, aggregates with Equation 4 (percentile by default) and produces
Equation 5 per-camera estimates grouped by FOV at the perceived actor
positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.aggregation import Aggregator, PercentileAggregator
from repro.core.ego_profile import EgoMotion
from repro.core.engine import LatencyEngine
from repro.core.evaluator import (
    EvaluationSeries,
    EvaluationTick,
    presample_trace,
)
from repro.core.fpr import estimate_camera_fprs
from repro.core.latency import (
    BACKENDS,
    LatencySearch,
    SearchStrategy,
    UNAVOIDABLE_LATENCY,
)
from repro.core.parameters import ZhuyiParams
from repro.core.threat import LongitudinalThreat, ThreatAssessor
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.errors import EstimationError
from repro.perception.noise import PerceptionNoise
from repro.perception.sensor import CameraRig, default_rig
from repro.perception.world_model import PerceivedActor, WorldModel
from repro.prediction.base import (
    Predictor,
    TraceHypothesis,
    predict_trace_via_loop,
)
from repro.road.track import Road
from repro.sim.trace import ScenarioTrace


@dataclass(frozen=True)
class _MarginThreat:
    """Decorator shrinking the gap — the perception-uncertainty extension.

    Wraps any threat and subtracts a safety margin from ``s_n``,
    modelling position uncertainty in the perceived world model. This is
    the hook the paper's future-work section sketches ("extended to
    account for perception uncertainty").
    """

    inner: LongitudinalThreat
    margin: float

    def gap_at(self, t: float) -> float:
        return max(0.0, self.inner.gap_at(t) - self.margin)

    def actor_speed_at(self, t: float) -> float:
        return self.inner.actor_speed_at(t)

    def sample(self, times):
        gaps, speeds = self.inner.sample(times)
        return np.maximum(0.0, gaps - self.margin), speeds


@dataclass
class OnlineEstimator:
    """The Zhuyi block of Figure 3: world model + predictions in, FPRs out.

    Attributes:
        params: the Zhuyi constants.
        predictor: trajectory predictor supplying the set ``T`` of Eq 4.
        rig: camera rig for FOV grouping.
        aggregator: Equation 4 reduction (paper default: 99th percentile).
        road: road geometry for threat gating.
        search: per-actor latency solver.
        gap_margin: optional perception-uncertainty margin subtracted
            from every gap (metres); 0 disables the extension.
        assumed_actor_spec: physical spec attributed to perceived actors
            (the world model carries no extent information).
        backend: ``"batched"`` (default) solves the tick's full batch —
            every predicted future of every confirmed actor — in one
            :class:`repro.core.engine.LatencyEngine` call; ``"scalar"``
            loops the reference search. Bit-identical estimates.
        noise: optional stochastic perception injected into
            :meth:`replay` (undetected ticks drop the actor from the
            replayed world model; position noise perturbs the perceived
            states the predictor sees). Counter-keyed draws keep the
            scalar and batched replays bit-identical under noise, from
            any resume tick. Live :meth:`estimate` calls read a real
            world model and never consult this field.
    """

    params: ZhuyiParams
    predictor: Predictor
    rig: CameraRig = field(default_factory=default_rig)
    aggregator: Aggregator = field(default_factory=PercentileAggregator)
    road: Road | None = None
    search: LatencySearch | None = None
    gap_margin: float = 0.0
    assumed_actor_spec: VehicleSpec = field(default_factory=VehicleSpec)
    backend: str = "batched"
    noise: PerceptionNoise | None = None

    def __post_init__(self) -> None:
        if self.gap_margin < 0.0:
            raise EstimationError("gap margin must be non-negative")
        if self.backend not in BACKENDS:
            raise EstimationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.search is None:
            self.search = LatencySearch(params=self.params)
        self._engine = None
        if (
            self.backend == "batched"
            and self.search.strategy is SearchStrategy.EXACT
        ):
            self._engine = LatencyEngine(
                params=self.search.params, strict=self.search.strict
            )

    def estimate(
        self,
        now: float,
        ego_state: VehicleState,
        ego_spec: VehicleSpec,
        world_model: WorldModel,
        l0: float,
        visibility: Mapping[str, Sequence[Hashable]] | None = None,
    ) -> EvaluationTick:
        """One online estimation tick.

        Args:
            now: current time (seconds).
            ego_state: the ego's (localized) state.
            ego_spec: the ego's physical spec.
            world_model: confirmed perceived actors.
            l0: the perception stack's current processing latency (s).
            visibility: precomputed Equation 5 FOV grouping for this
                tick (the :meth:`replay` batch path passes one slice of
                the trace-level visibility tables); ``None`` groups
                per-tick through ``rig.visible_actors``.

        Returns:
            The same tick structure the offline evaluator produces, so
            downstream consumers (safety check, prioritization, figures)
            are agnostic to where estimates came from.
        """
        assessor = ThreatAssessor(params=self.params, road=self.road)
        ego_motion = EgoMotion.from_state(
            ego_state.speed, ego_state.accel, self.params
        )

        # First pass: assess every predicted future of every confirmed
        # actor, collecting the tick's full threat batch.
        actor_positions = {}
        per_actor: list[tuple[str, list[tuple[float, object | None]]]] = []
        for perceived in world_model:
            actor_positions[perceived.actor_id] = perceived.position
            predictions = self.predictor.predict(
                perceived, now, self.params.horizon
            )
            entries: list[tuple[float, object | None]] = []
            for prediction in predictions:
                threat = assessor.assess(
                    ego_state,
                    ego_spec,
                    prediction.trajectory,
                    self.assumed_actor_spec,
                    t0=now,
                )
                if threat is not None and self.gap_margin > 0.0:
                    threat = _MarginThreat(
                        inner=threat, margin=self.gap_margin
                    )
                entries.append((prediction.probability, threat))
            per_actor.append((perceived.actor_id, entries))

        # One kernel call covers the whole tick (all actors, all
        # futures); the scalar backend loops in the same order.
        batch = [
            threat
            for _, entries in per_actor
            for _, threat in entries
            if threat is not None
        ]
        if self._engine is not None:
            solved = iter(self._engine.solve_batch(ego_motion, batch, l0))
        else:
            solved = iter(
                self.search.tolerable_latency(ego_motion, threat, l0)
                for threat in batch
            )

        actor_latencies: dict[str, float | None] = {}
        for actor_id, entries in per_actor:
            is_threat, latency = self._aggregate(entries, solved)
            if is_threat:
                actor_latencies[actor_id] = latency

        if visibility is None:
            visibility = self.rig.visible_actors(ego_state, actor_positions)
        estimates = estimate_camera_fprs(actor_latencies, visibility, self.params)
        return EvaluationTick(
            time=now,
            camera_estimates=estimates,
            actor_latencies=actor_latencies,
            ego_speed=ego_state.speed,
            ego_accel=ego_state.accel,
        )

    def replay(
        self,
        trace: ScenarioTrace,
        l0: float | None = None,
        period: float = 0.1,
    ) -> EvaluationSeries:
        """Post-deployment replay of a recorded trace.

        The trace-level counterpart of calling :meth:`estimate` in a
        loop: the recorded ground truth stands in for a perfect
        perception stack (every actor confirmed, zero staleness), the
        predictor supplies each actor's future set at every tick, and
        Equations 4-5 aggregate exactly as they do live. An estimator
        built with ``noise`` replays an *imperfect* stack instead — the
        trace-level fault-injection style of Antonante et al. 2023:
        undetected actors vanish from the replayed world model for that
        tick and perceived positions carry the counter-keyed jitter.

        With ``backend="batched"`` the whole replay is one array
        program: the predictor's batch protocol (``predict_trace``)
        rolls every hypothesis out over all ticks at once, the threat
        assessor gates and samples each hypothesis' futures batch
        (:meth:`repro.core.threat.ThreatAssessor.could_collide_futures`
        / ``sample_threat_futures``), every surviving (tick, actor,
        hypothesis) row solves through a single
        :meth:`repro.core.engine.LatencyEngine.trace_grid` +
        ``solve_rows`` call, Equation 4 aggregates row batches through
        the aggregator's vectorized path and the Equation 5 FOV
        grouping comes from one
        :meth:`repro.perception.sensor.CameraRig.visible_actors_trace`
        array program. ``"scalar"`` replays the per-tick reference
        loop. The two are bit-identical; predictors (or configurations)
        the batch path cannot serve fall back to the per-tick loop.

        Args:
            trace: the recorded closed-loop run.
            l0: processing latency entering the model; defaults to one
                frame period of the trace's recorded FPR setting.
            period: estimation cadence along the trace (seconds).

        Returns:
            The replayed tick series (same structure as the offline
            evaluator's output).
        """
        if l0 is None:
            l0 = trace.default_l0()
        # The offline evaluator's presampler supplies the tick grid and
        # the per-tick states/positions (noise-injected when the
        # estimator carries a noise model), so replay ticks land on
        # exactly the grid an OfflineEvaluator with stride=period
        # evaluates — and draw the exact same injected perception.
        samples = presample_trace(trace, period, noise=self.noise)
        times = samples.times
        ego_states = samples.ego_states
        actor_states = samples.actor_states
        detected = samples.detected

        visibility_tables = None
        if self.backend == "batched":
            visibility_tables = self.rig.visible_actors_trace(
                ego_states, samples.actor_positions, detected=detected
            )

        # The trace-level array program. (The no-road + lateral-gating
        # combination needs per-tick ego frames for the corridor mask
        # and keeps the per-tick path, mirroring the offline evaluator.)
        if self._engine is not None and (
            self.road is not None or not self.params.gate_lateral
        ):
            ticks = self._replay_batched(
                trace, samples, l0, visibility_tables
            )
            if ticks is not None:
                return EvaluationSeries(
                    scenario=trace.scenario,
                    ticks=ticks,
                    params=self.params,
                    l0=l0,
                )

        ticks = []
        for i in range(len(times)):
            now = float(times[i])
            world = WorldModel()
            for actor_id, states in actor_states.items():
                if detected is not None and not detected[actor_id][i]:
                    # An injected miss: the actor never reached the
                    # replayed world model this tick.
                    continue
                state = states[i]
                world.upsert(
                    PerceivedActor(
                        actor_id=actor_id,
                        position=state.position,
                        velocity=state.velocity(),
                        heading=state.heading,
                        speed=state.speed,
                        accel=state.accel,
                        timestamp=now,
                    )
                )
            ticks.append(
                self.estimate(
                    now=now,
                    ego_state=ego_states[i],
                    ego_spec=trace.ego_spec,
                    world_model=world,
                    l0=l0,
                    visibility=(
                        None
                        if visibility_tables is None
                        else visibility_tables[i]
                    ),
                )
            )
        return EvaluationSeries(
            scenario=trace.scenario, ticks=ticks, params=self.params, l0=l0
        )

    def _replay_batched(
        self,
        trace: ScenarioTrace,
        samples,
        l0: float,
        visibility_tables,
    ) -> list[EvaluationTick] | None:
        """The whole-trace replay as one array program.

        Returns the replayed ticks, or ``None`` when the predictor's
        output cannot be batched (the caller then runs the per-tick
        reference loop). Every step reuses a kernel whose per-element
        arithmetic equals the per-tick path's, so the resulting series
        is bit-identical to the scalar replay:

        1. per-tick :class:`PerceivedActor` views of the recorded states
           (the same objects the scalar loop feeds :meth:`estimate`);
        2. hypothesis rollouts for all ticks via the predictor's batch
           protocol (``predict_trace``, or the stacked per-tick loop);
        3. collision gates + threat samples per (hypothesis, tick) row
           through the futures-batch assessor;
        4. one :meth:`LatencyEngine.trace_grid` + ``solve_rows`` call
           over every surviving (tick, actor, hypothesis) row (flushed
           in bounded blocks on traces long enough that holding every
           row's samples at once would go memory-bound);
        5. Equation 4 row aggregation (vectorized when the aggregator
           provides ``aggregate_rows``) and Equation 5 grouping from
           the precomputed visibility tables.
        """
        times = samples.times
        n_ticks = len(times)
        ego_states = samples.ego_states

        # 1-2: perceived views + batched hypothesis rollouts per actor.
        hypotheses_by_actor: dict[str, list[TraceHypothesis]] = {}
        for actor_id, states in samples.actor_states.items():
            actors = [
                PerceivedActor(
                    actor_id=actor_id,
                    position=state.position,
                    velocity=state.velocity(),
                    heading=state.heading,
                    speed=state.speed,
                    accel=state.accel,
                    timestamp=float(times[i]),
                )
                for i, state in enumerate(states)
            ]
            batch = getattr(self.predictor, "predict_trace", None)
            if batch is not None:
                hypotheses = batch(actors, times, self.params.horizon)
            else:
                # Probe batchability on a short prefix first: an
                # unbatchable predictor (ragged output) is detected
                # after a handful of predict calls instead of after a
                # full per-tick pass that the fallback loop would then
                # repeat wholesale.
                probe = min(4, len(actors))
                if (
                    predict_trace_via_loop(
                        self.predictor,
                        actors[:probe],
                        times[:probe],
                        self.params.horizon,
                    )
                    is None
                ):
                    return None
                hypotheses = predict_trace_via_loop(
                    self.predictor, actors, times, self.params.horizon
                )
            if hypotheses is None:
                return None
            hypotheses_by_actor[actor_id] = hypotheses

        assessor = ThreatAssessor(params=self.params, road=self.road)
        ego_motions = [
            EgoMotion.from_state(state.speed, state.accel, self.params)
            for state in ego_states
        ]
        grid = self._engine.trace_grid(ego_motions, l0)
        rel_times = np.concatenate([grid.times, grid.reactions])

        # 3: gates + threat-sample rows for every (actor, hypothesis).
        # Rows accumulate toward one solve_rows call; past the element
        # budget (~2 x 32 MB of row samples) they flush early so a long
        # trace never holds every row's samples at once (the same
        # cache-residency concern the offline evaluator blocks for).
        row_element_budget = 4_000_000
        tick_chunks: list[np.ndarray] = []
        gap_chunks: list[np.ndarray] = []
        speed_chunks: list[np.ndarray] = []
        row_slots: list[tuple[np.ndarray, np.ndarray]] = []
        pending_elements = 0

        def flush_rows() -> None:
            nonlocal pending_elements
            if not tick_chunks:
                return
            results = self._engine.solve_rows(
                grid,
                np.concatenate(tick_chunks),
                ego_motions,
                np.vstack(gap_chunks),
                np.vstack(speed_chunks),
            )
            position = 0
            for latencies, solved_ticks in row_slots:
                for tick in solved_ticks:
                    latencies[tick] = results[position].latency_or_zero()
                    position += 1
            tick_chunks.clear()
            gap_chunks.clear()
            speed_chunks.clear()
            row_slots.clear()
            pending_elements = 0

        detected = samples.detected
        per_actor: list[tuple[str, list[tuple[TraceHypothesis, np.ndarray, np.ndarray, np.ndarray]]]] = []
        for actor_id, hypotheses in hypotheses_by_actor.items():
            per_hypothesis = []
            for hypothesis in hypotheses:
                # Injected misses drop the actor from the replayed
                # world model for the tick: its hypotheses go inactive
                # there, exactly as the scalar loop's skipped upsert
                # leaves nothing to predict (rollouts are per-tick
                # pure, so masking after the fact is equivalent).
                active_mask = np.asarray(hypothesis.active, dtype=bool)
                if detected is not None:
                    active_mask = active_mask & detected[actor_id]
                active = np.flatnonzero(active_mask)
                threat_mask = np.zeros(n_ticks, dtype=bool)
                # Gated-out futures contribute the most permissive
                # latency; solved rows overwrite their slots below.
                latencies = np.full(n_ticks, self.params.l_max)
                if active.size:
                    rollout = hypothesis.rollout.take(active)
                    gates = assessor.could_collide_futures(
                        [ego_states[i] for i in active],
                        trace.ego_spec,
                        rollout,
                        self.assumed_actor_spec,
                        times[active],
                    )
                    solved_ticks = active[gates]
                    threat_mask[solved_ticks] = True
                    if solved_ticks.size:
                        gaps, speeds = assessor.sample_threat_futures(
                            [ego_states[i] for i in solved_ticks],
                            trace.ego_spec,
                            hypothesis.rollout.take(solved_ticks),
                            self.assumed_actor_spec,
                            times[solved_ticks],
                            rel_times,
                        )
                        if self.gap_margin > 0.0:
                            gaps = np.maximum(0.0, gaps - self.gap_margin)
                        tick_chunks.append(solved_ticks)
                        gap_chunks.append(gaps)
                        speed_chunks.append(speeds)
                        row_slots.append((latencies, solved_ticks))
                        pending_elements += gaps.size
                        if pending_elements >= row_element_budget:
                            flush_rows()
                per_hypothesis.append(
                    (hypothesis, active_mask, threat_mask, latencies)
                )
            per_actor.append((actor_id, per_hypothesis))

        # 4: every remaining (tick, actor, hypothesis) row through one
        # kernel call (the whole replay, unless the budget flushed).
        flush_rows()

        # 5: Equation 4 across hypotheses, then Equation 5 per tick.
        actor_latencies: list[dict[str, float | None]] = [
            {} for _ in range(n_ticks)
        ]
        for actor_id, per_hypothesis in per_actor:
            if not per_hypothesis:
                # A predictor may deem an actor irrelevant (no futures
                # at any tick): not a threat, like the scalar loop.
                continue
            latencies = np.stack(
                [values for _, _, _, values in per_hypothesis], axis=1
            )
            probabilities = np.stack(
                [h.probabilities for h, _, _, _ in per_hypothesis], axis=1
            )
            active = np.stack(
                [mask for _, mask, _, _ in per_hypothesis], axis=1
            )
            threat = np.stack(
                [mask for _, _, mask, _ in per_hypothesis], axis=1
            )
            rows = np.flatnonzero(threat.any(axis=1))
            if rows.size == 0:
                continue
            aggregated = self._aggregate_rows(
                latencies[rows], probabilities[rows], active[rows]
            )
            for row, value in zip(rows, aggregated):
                actor_latencies[int(row)][actor_id] = (
                    None if value <= UNAVOIDABLE_LATENCY else float(value)
                )

        ticks = []
        for i in range(n_ticks):
            estimates = estimate_camera_fprs(
                actor_latencies[i], visibility_tables[i], self.params
            )
            ticks.append(
                EvaluationTick(
                    time=float(times[i]),
                    camera_estimates=estimates,
                    actor_latencies=actor_latencies[i],
                    ego_speed=ego_states[i].speed,
                    ego_accel=ego_states[i].accel,
                )
            )
        return ticks

    def _aggregate_rows(
        self,
        latencies: np.ndarray,
        probabilities: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Equation 4 over a ``(rows, hypotheses)`` batch.

        Uses the aggregator's vectorized ``aggregate_rows`` when it has
        one (the built-in aggregators do); otherwise loops the scalar
        :meth:`Aggregator.aggregate` per row — still batched everywhere
        else, just not inside the reduction.
        """
        vectorized = getattr(self.aggregator, "aggregate_rows", None)
        if vectorized is not None:
            return np.asarray(vectorized(latencies, probabilities, active))
        return np.array(
            [
                self.aggregator.aggregate(
                    [float(l) for l, a in zip(row_l, row_a) if a],
                    [float(p) for p, a in zip(row_p, row_a) if a],
                )
                for row_l, row_p, row_a in zip(latencies, probabilities, active)
            ]
        )

    def _aggregate(self, entries, solved) -> tuple[bool, float | None]:
        """``(is_threat, latency)`` — Eq 4 aggregate for one actor.

        ``entries`` pairs each predicted future's probability with its
        threat view (``None`` when the future was gated out); ``solved``
        yields the batch's :class:`LatencyResult` objects in the same
        order the threats were collected. ``is_threat`` is False when
        every future was gated out (the actor cannot collide under any
        hypothesis).
        """
        latencies: list[float] = []
        probabilities: list[float] = []
        any_threat = False
        for probability, threat in entries:
            if threat is None:
                # This future never collides: it contributes the most
                # permissive latency rather than disappearing.
                latencies.append(self.params.l_max)
                probabilities.append(probability)
                continue
            any_threat = True
            latencies.append(next(solved).latency_or_zero())
            probabilities.append(probability)

        if not any_threat:
            return False, None
        aggregated = self.aggregator.aggregate(latencies, probabilities)
        if aggregated <= UNAVOIDABLE_LATENCY:
            return True, None
        return True, aggregated
