"""Pre-deployment offline evaluation of a scenario trace (Section 3.1).

"The Zhuyi model is executed at each time-step in the scenario trace
starting from the beginning until the end of the scenario. As we compute
the tolerable latency for each actor at a time, the actor's location at
future time-steps is known, i.e., the size of the set T is one."

The evaluator walks the trace at a fixed stride, runs the per-actor
latency search against each actor's *actual* future (read off the same
trace), groups actors by camera FOV at each instant and produces the
Equation 5 per-camera FPR series — the data behind Table 1's estimate
columns and Figures 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.ego_profile import EgoMotion
from repro.core.engine import LatencyEngine
from repro.core.fpr import CameraEstimate, estimate_camera_fprs
from repro.core.latency import BACKENDS, LatencySearch, SearchStrategy
from repro.core.parameters import ZhuyiParams
from repro.core.threat import EgoPathRows, ThreatAssessor
from repro.errors import EstimationError
from repro.geometry.vec import Vec2
from repro.perception.noise import PerceptionNoise
from repro.perception.sensor import ANALYZED_CAMERAS, CameraRig, default_rig
from repro.road.track import Road
from repro.sim.trace import ScenarioTrace
from repro.units import time_grid_count


@dataclass(frozen=True)
class EvaluationTick:
    """Zhuyi's output at one evaluation instant."""

    time: float
    camera_estimates: Mapping[str, CameraEstimate]
    actor_latencies: Mapping[str, float | None]
    ego_speed: float
    ego_accel: float

    def fpr(self, camera: str) -> float:
        """The FPR estimate for one camera at this tick."""
        if camera not in self.camera_estimates:
            raise EstimationError(f"no estimate for camera {camera!r}")
        return self.camera_estimates[camera].fpr

    def latency(self, camera: str) -> float:
        """The binding latency for one camera at this tick (seconds)."""
        if camera not in self.camera_estimates:
            raise EstimationError(f"no estimate for camera {camera!r}")
        return self.camera_estimates[camera].latency

    def total_fpr(self, cameras: Sequence[str] = ANALYZED_CAMERAS) -> float:
        """Summed FPR demand over a camera subset at this tick."""
        return sum(self.fpr(camera) for camera in cameras)


class EvaluationSeries:
    """A time series of evaluation ticks with the paper's summaries."""

    def __init__(
        self,
        scenario: str,
        ticks: Sequence[EvaluationTick],
        params: ZhuyiParams,
        l0: float,
    ):
        if not ticks:
            raise EstimationError("an evaluation series needs at least one tick")
        self.scenario = scenario
        self.ticks = list(ticks)
        self.params = params
        self.l0 = l0

    def times(self) -> list[float]:
        """Evaluation timestamps (seconds)."""
        return [tick.time for tick in self.ticks]

    def camera_latency_series(self, camera: str) -> list[float]:
        """Binding latency of one camera over time (seconds)."""
        return [tick.latency(camera) for tick in self.ticks]

    def camera_fpr_series(self, camera: str) -> list[float]:
        """FPR estimate of one camera over time."""
        return [tick.fpr(camera) for tick in self.ticks]

    def ego_accel_series(self) -> list[float]:
        """Ego longitudinal acceleration over time (m/s^2)."""
        return [tick.ego_accel for tick in self.ticks]

    def max_fpr(self, camera: str | None = None) -> float:
        """Highest FPR estimate — one camera, or across all cameras.

        Table 1's "maximum estimated FPR" is this value across all
        cameras at all times for one run.
        """
        if camera is not None:
            return max(self.camera_fpr_series(camera))
        return max(
            estimate.fpr
            for tick in self.ticks
            for estimate in tick.camera_estimates.values()
        )

    def max_total_fpr(
        self, cameras: Sequence[str] = ANALYZED_CAMERAS
    ) -> float:
        """Table 1's ``max(F_c1 + F_c2 + F_c3)``."""
        return max(tick.total_fpr(cameras) for tick in self.ticks)

    def fraction_of_provision(
        self,
        provisioned_fpr: float = 30.0,
        cameras: Sequence[str] = ANALYZED_CAMERAS,
    ) -> float:
        """Table 1's last column: peak demand over the 30-FPR provision."""
        return self.max_total_fpr(cameras) / (provisioned_fpr * len(cameras))


@dataclass(frozen=True)
class TraceSamples:
    """Stride-aligned trajectory samples of one trace.

    Everything here is a pure function of (trace, stride) — the Zhuyi
    constants never enter the sampling — so one :class:`TraceSamples`
    can be shared across every ``ZhuyiParams`` variant evaluated on the
    same trace (the batch campaign's cross-variant cache). Build with
    :func:`presample_trace`; feed to :meth:`OfflineEvaluator.evaluate`
    via its ``samples`` argument.

    Attributes:
        stride: evaluation period the samples were taken at (seconds).
        times: the tick timestamps, ``start + i * stride``.
        ego_states: ego state at each tick (one batched interpolation).
        actor_states: per-actor states at each tick.
        actor_trajectories: the full interpolated trajectories, still
            needed by the threat assessor for future lookups.
        actor_positions: per-actor ``(xs, ys)`` position arrays at each
            tick — the same floats as ``actor_states`` positions, kept
            in array form for the batched visibility tables. ``None``
            on hand-built samples; the evaluator re-derives them.
        detected: per-actor boolean detection masks over the ticks when
            the samples carry injected perception noise (an undetected
            tick contributes neither a latency demand nor a visible
            actor); ``None`` on noise-free samples.
        noise: the :class:`~repro.perception.noise.PerceptionNoise`
            the samples were drawn under (``None`` when noise-free) —
            evaluators check it against their own setting so a cached
            sample set can never silently cross noise configurations.
    """

    stride: float
    times: np.ndarray
    ego_states: Sequence
    actor_states: Mapping[str, Sequence]
    actor_trajectories: Mapping[str, object]
    actor_positions: Mapping[str, tuple[np.ndarray, np.ndarray]] | None = None
    detected: Mapping[str, np.ndarray] | None = None
    noise: PerceptionNoise | None = None


def effective_noise(noise: PerceptionNoise | None) -> PerceptionNoise | None:
    """Normalize a noise setting: disabled configurations act as ``None``."""
    if noise is not None and noise.enabled:
        return noise
    return None


def presample_trace(
    trace: ScenarioTrace,
    stride: float,
    noise: PerceptionNoise | None = None,
) -> TraceSamples:
    """Sample every trajectory of a trace once at the evaluation stride.

    Tick times are computed as ``start + i * stride`` rather than by
    accumulating ``t0 += stride``: repeated float addition drifts, which
    on long traces (or near-multiple durations) skips or duplicates the
    final tick. Each vehicle is interpolated in one vectorized call
    instead of a bisect-based ``state_at`` per tick.

    When ``noise`` is enabled the sampled actor states carry the
    injected perception: positions perturbed by the counter-keyed
    draws, plus per-actor detection masks. Draw keys are the tick
    timestamps themselves (by bit pattern), so resampling any window of
    the same grid — a resumed replay, a different shard — reproduces
    the same injected values tick for tick.

    Args:
        trace: the recorded closed-loop run.
        stride: evaluation period along the trace (seconds, positive).
        noise: optional stochastic perception to inject; a disabled
            configuration is equivalent to ``None``.

    Returns:
        A :class:`TraceSamples` reusable by any parameter variant.
    """
    if stride <= 0.0:
        raise EstimationError(f"stride must be positive, got {stride}")
    noise = effective_noise(noise)
    ego_trajectory = trace.ego_trajectory()
    actor_trajectories = {
        actor_id: trace.actor_trajectory(actor_id)
        for actor_id in trace.actor_ids()
    }
    # time_span (not steps[0]/steps[-1]) keeps the store's column-backed
    # traces on their zero-copy path: the span comes straight from the
    # memory-mapped time column, no step objects materialize.
    start, end = trace.time_span()
    count = time_grid_count(end - start, stride)
    times = start + stride * np.arange(count)
    # One interpolation pass per actor yields both the state objects
    # and the position arrays (StateTrajectory.sample_ticks).
    actor_ticks = {
        actor_id: trajectory.sample_ticks(times)
        for actor_id, trajectory in actor_trajectories.items()
    }
    detected: dict[str, np.ndarray] | None = None
    if noise is not None:
        detected = {}
        for actor_id, (states, (xs, ys)) in list(actor_ticks.items()):
            mask, dx, dy = noise.sample_actor(actor_id, times)
            detected[actor_id] = mask
            xs = xs + dx
            ys = ys + dy
            states = [
                replace(state, position=Vec2(float(x), float(y)))
                for state, x, y in zip(states, xs, ys)
            ]
            actor_ticks[actor_id] = (states, (xs, ys))
    return TraceSamples(
        stride=stride,
        times=times,
        ego_states=ego_trajectory.sample_states(times),
        actor_states={
            actor_id: states for actor_id, (states, _) in actor_ticks.items()
        },
        actor_trajectories=actor_trajectories,
        actor_positions={
            actor_id: positions
            for actor_id, (_, positions) in actor_ticks.items()
        },
        detected=detected,
        noise=noise,
    )


@dataclass
class OfflineEvaluator:
    """Runs the Zhuyi model over a recorded scenario trace.

    Attributes:
        params: the Zhuyi constants.
        rig: camera rig used for FOV grouping (the paper's five cameras).
        search: the per-actor latency solver.
        road: road geometry for lateral threat gating (falls back to the
            ego heading frame when omitted).
        stride: evaluation period along the trace (seconds). The paper
            evaluates at every simulation step; 50 ms is the coarsest
            stride that still catches the shortest binding windows in
            the catalog scenarios.
        backend: ``"batched"`` (default) solves each tick's whole actor
            batch through the :class:`repro.core.engine.LatencyEngine`
            array kernel and groups actors by camera FOV through the
            trace-level Equation 5 visibility tables
            (:meth:`repro.perception.sensor.CameraRig.visible_actors_trace`);
            ``"scalar"`` runs the per-actor, per-tick reference loop;
            ``"crosstrace"`` additionally routes
            :meth:`evaluate_many` through the whole-block kernels of
            :func:`evaluate_trace_block` (single-trace :meth:`evaluate`
            calls behave exactly like ``"batched"``). Results are
            bit-identical across all three; only the clock differs. A
            PAPER-strategy ``search`` always solves latencies scalar
            (Eq 3 stepping is sequential by construction), though the
            visibility tables still batch.
        noise: optional stochastic perception
            (:class:`~repro.perception.noise.PerceptionNoise`) injected
            into the sampled trace: undetected actors place no latency
            demand and join no camera grouping at that tick, and
            position noise perturbs the perceived states. Counter-keyed
            draws keep every backend bit-identical under noise too.
    """

    params: ZhuyiParams = field(default_factory=ZhuyiParams)
    rig: CameraRig = field(default_factory=default_rig)
    search: LatencySearch | None = None
    road: Road | None = None
    stride: float = 0.05
    backend: str = "batched"
    noise: PerceptionNoise | None = None

    def __post_init__(self) -> None:
        if self.stride <= 0.0:
            raise EstimationError(f"stride must be positive, got {self.stride}")
        if self.backend not in BACKENDS:
            raise EstimationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.search is None:
            self.search = LatencySearch(params=self.params)
        self._engine = None
        if (
            self.backend in ("batched", "crosstrace")
            and self.search.strategy is SearchStrategy.EXACT
        ):
            self._engine = LatencyEngine(
                params=self.search.params, strict=self.search.strict
            )

    def evaluate(
        self,
        trace: ScenarioTrace,
        l0: float | None = None,
        samples: TraceSamples | None = None,
    ) -> EvaluationSeries:
        """Evaluate a full trace.

        Args:
            trace: the recorded closed-loop run.
            l0: the run's processing latency (entering ``alpha``);
                defaults to one frame period of the trace's recorded
                FPR setting.
            samples: pre-built :func:`presample_trace` output to reuse
                (the cross-variant cache); its stride and noise setting
                must match the evaluator's. Omitted, the trace is
                sampled here.

        Returns:
            The per-camera FPR series over the trace.
        """
        if l0 is None:
            l0 = trace.default_l0()

        if samples is None:
            samples = presample_trace(trace, self.stride, noise=self.noise)
        elif abs(samples.stride - self.stride) > 1e-12:
            raise EstimationError(
                f"presampled stride {samples.stride} does not match "
                f"evaluator stride {self.stride}"
            )
        elif samples.noise != effective_noise(self.noise):
            raise EstimationError(
                f"presampled noise {samples.noise} does not match "
                f"evaluator noise {self.noise}"
            )

        assessor = ThreatAssessor(params=self.params, road=self.road)
        times = samples.times
        ego_states = samples.ego_states
        actor_states = samples.actor_states
        actor_trajectories = samples.actor_trajectories

        # The collision gate for every (actor, tick) pair, one batched
        # pass per actor instead of a per-tick Python loop (verdicts
        # identical — see ThreatAssessor.could_collide_trace).
        gate_tables = {
            actor_id: assessor.could_collide_trace(
                ego_states,
                trace.ego_spec,
                trajectory,
                trace.actor_spec(actor_id),
                times,
            )
            for actor_id, trajectory in actor_trajectories.items()
        }

        # Injected misses gate exactly like geometric impossibility: an
        # undetected actor places no latency demand at that tick. One
        # AND here covers both the per-tick loop and the trace kernel.
        if samples.detected is not None:
            gate_tables = {
                actor_id: table & samples.detected[actor_id]
                for actor_id, table in gate_tables.items()
            }

        # The batched backend solves the whole actors x latency-grid x
        # ticks problem through the trace-level kernel; per-tick latency
        # dictionaries come back precomputed. (The no-road +
        # lateral-gating combination needs per-tick ego frames for the
        # corridor and keeps the per-tick path.)
        latency_tables = None
        if self._engine is not None and (
            self.road is not None or not self.params.gate_lateral
        ):
            latency_tables = self._solve_trace_latencies(
                trace, samples, assessor, gate_tables, l0
            )

        # Equation 5 FOV grouping for every tick in one array program —
        # the trace-level visibility kernel (groupings bit-identical to
        # the per-tick rig.visible_actors the scalar backend runs).
        visibility_tables = None
        if self.backend in ("batched", "crosstrace"):
            positions = samples.actor_positions
            if positions is None:
                positions = {
                    actor_id: (
                        np.array([state.position.x for state in states]),
                        np.array([state.position.y for state in states]),
                    )
                    for actor_id, states in actor_states.items()
                }
            visibility_tables = self.rig.visible_actors_trace(
                ego_states, positions, detected=samples.detected
            )

        ticks = [
            self._evaluate_tick(
                float(times[i]),
                ego_states[i],
                {actor_id: states[i] for actor_id, states in actor_states.items()},
                {actor_id: table[i] for actor_id, table in gate_tables.items()},
                trace,
                actor_trajectories,
                assessor,
                l0,
                precomputed=(
                    None if latency_tables is None else latency_tables[i]
                ),
                visibility=(
                    None if visibility_tables is None else visibility_tables[i]
                ),
                detected=(
                    None
                    if samples.detected is None
                    else {
                        actor_id: bool(mask[i])
                        for actor_id, mask in samples.detected.items()
                    }
                ),
            )
            for i in range(len(times))
        ]
        return EvaluationSeries(
            scenario=trace.scenario, ticks=ticks, params=self.params, l0=l0
        )

    def evaluate_many(
        self,
        traces: Sequence[ScenarioTrace],
        samples: Sequence[TraceSamples | None] | None = None,
        l0s: Sequence[float | None] | None = None,
    ) -> list[EvaluationSeries]:
        """Evaluate a whole stack of traces, one series each.

        On the ``"crosstrace"`` backend the stack routes through
        :func:`evaluate_trace_block`, which solves every trace's gated
        (tick, actor) rows through shared array kernels — visibility
        tables in one rig pass, latencies through stacked
        :meth:`~repro.core.engine.LatencyEngine.trace_grid` programs
        per ``l0`` group. Other backends (and a PAPER-strategy search,
        whose Eq 3 stepping is sequential) simply loop
        :meth:`evaluate`. Series are identical either way, element for
        element.

        Args:
            traces: the recorded closed-loop runs.
            samples: optional per-trace :func:`presample_trace` output
                (entries may be ``None`` to sample here).
            l0s: optional per-trace processing latencies; ``None``
                entries default like :meth:`evaluate`'s ``l0``.

        Returns:
            One :class:`EvaluationSeries` per trace, in input order.
        """
        if samples is None:
            samples = [None] * len(traces)
        if l0s is None:
            l0s = [None] * len(traces)
        if len(samples) != len(traces) or len(l0s) != len(traces):
            raise EstimationError(
                "samples and l0s must align with traces: "
                f"{len(traces)} traces, {len(samples)} samples, "
                f"{len(l0s)} l0s"
            )
        if (
            self.backend != "crosstrace"
            or self.search.strategy is not SearchStrategy.EXACT
        ):
            return [
                self.evaluate(trace, l0=l0, samples=trace_samples)
                for trace, trace_samples, l0 in zip(traces, samples, l0s)
            ]
        for trace_samples in samples:
            if (
                trace_samples is not None
                and trace_samples.noise != effective_noise(self.noise)
            ):
                raise EstimationError(
                    f"presampled noise {trace_samples.noise} does not "
                    f"match evaluator noise {self.noise}"
                )
        jobs = [
            TraceJob(
                trace=trace,
                samples=(
                    presample_trace(trace, self.stride, noise=self.noise)
                    if trace_samples is None
                    else trace_samples
                ),
                l0=trace.default_l0() if l0 is None else l0,
                road=self.road,
            )
            for trace, trace_samples, l0 in zip(traces, samples, l0s)
        ]
        block = evaluate_trace_block(
            jobs,
            [self.params],
            self.stride,
            rig=self.rig,
            strict=self.search.strict,
        )
        return [series[0] for series in block]

    def _solve_trace_latencies(
        self,
        trace: ScenarioTrace,
        samples: TraceSamples,
        assessor: ThreatAssessor,
        gate_tables,
        l0: float,
    ) -> list[dict[str, float | None]]:
        """Per-tick actor latencies via the trace-level batched kernel.

        Ticks are processed in blocks (bounding the sampled-row arrays'
        memory): per block, every gated (actor, tick) pair becomes one
        row — its threat quantities sampled in one batched pass per
        actor (:meth:`ThreatAssessor.sample_threats_trace`) — and the
        engine solves all rows through
        :meth:`repro.core.engine.LatencyEngine.solve_rows`. Values are
        bit-identical to the per-tick path; see those methods for the
        parity arguments.
        """
        times = samples.times
        ego_states = samples.ego_states
        ego_motions = [
            EgoMotion.from_state(state.speed, state.accel, self.params)
            for state in ego_states
        ]
        grid = self._engine.trace_grid(ego_motions, l0)
        rel_times = np.concatenate([grid.times, grid.reactions])
        tables: list[dict[str, float | None]] = [
            {} for _ in range(len(times))
        ]
        # Block size targets ~2M row-elements per kernel call: big
        # enough to amortize per-call overhead, small enough that the
        # row arrays stay cache-resident instead of going memory-bound.
        n_actors = max(len(samples.actor_trajectories), 1)
        block = max(1, int(2_000_000 / (rel_times.size * n_actors)))
        for start in range(0, len(times), block):
            stop = min(start + block, len(times))
            tick_chunks: list[np.ndarray] = []
            row_actors: list[str] = []
            gap_chunks: list[np.ndarray] = []
            speed_chunks: list[np.ndarray] = []
            for actor_id, trajectory in samples.actor_trajectories.items():
                gated = start + np.flatnonzero(
                    gate_tables[actor_id][start:stop]
                )
                if gated.size == 0:
                    continue
                gaps, speeds = assessor.sample_threats_trace(
                    [ego_states[i] for i in gated],
                    trace.ego_spec,
                    trajectory,
                    trace.actor_spec(actor_id),
                    times[gated],
                    rel_times,
                )
                tick_chunks.append(gated)
                row_actors.extend([actor_id] * gated.size)
                gap_chunks.append(gaps)
                speed_chunks.append(speeds)
            if not tick_chunks:
                continue
            results = self._engine.solve_rows(
                grid,
                np.concatenate(tick_chunks),
                ego_motions,
                np.vstack(gap_chunks),
                np.vstack(speed_chunks),
            )
            for tick, actor_id, result in zip(
                np.concatenate(tick_chunks), row_actors, results
            ):
                tables[int(tick)][actor_id] = result.latency
        # Row order above is actor-major; per-tick dictionaries must
        # list actors in trajectory order like the per-tick path does.
        order = list(samples.actor_trajectories)
        return [
            {
                actor_id: table[actor_id]
                for actor_id in order
                if actor_id in table
            }
            for table in tables
        ]

    def _evaluate_tick(
        self,
        t0: float,
        ego_state,
        actor_states_now,
        gates,
        trace: ScenarioTrace,
        actor_trajectories,
        assessor: ThreatAssessor,
        l0: float,
        precomputed: dict[str, float | None] | None = None,
        visibility: Mapping[str, Sequence] | None = None,
        detected: Mapping[str, bool] | None = None,
    ) -> EvaluationTick:
        # An undetected actor is invisible to perception this tick: it
        # joins no camera grouping (its gate is already off upstream).
        actor_positions = {
            actor_id: actor_states_now[actor_id].position
            for actor_id in actor_trajectories
            if detected is None or detected[actor_id]
        }
        if precomputed is not None:
            actor_latencies = precomputed
        else:
            ego_motion = EgoMotion.from_state(
                ego_state.speed, ego_state.accel, self.params
            )
            threats = {}
            for actor_id, trajectory in actor_trajectories.items():
                if not gates[actor_id]:
                    continue
                threats[actor_id] = assessor.build_threat(
                    ego_state,
                    trace.ego_spec,
                    trajectory,
                    trace.actor_spec(actor_id),
                    t0=t0,
                )

            # Offline: |T| = 1, so Equation 4 reduces to the single
            # value.
            if self._engine is not None:
                results = self._engine.solve_batch(
                    ego_motion, list(threats.values()), l0
                )
                actor_latencies: dict[str, float | None] = {
                    actor_id: result.latency
                    for actor_id, result in zip(threats, results)
                }
            else:
                actor_latencies = {
                    actor_id: self.search.tolerable_latency(
                        ego_motion, threat, l0
                    ).latency
                    for actor_id, threat in threats.items()
                }

        if visibility is None:
            visibility = self.rig.visible_actors(ego_state, actor_positions)
        estimates = estimate_camera_fprs(actor_latencies, visibility, self.params)
        return EvaluationTick(
            time=t0,
            camera_estimates=estimates,
            actor_latencies=actor_latencies,
            ego_speed=ego_state.speed,
            ego_accel=ego_state.accel,
        )


@dataclass(frozen=True)
class TraceJob:
    """One trace of a cross-trace evaluation block.

    Attributes:
        trace: the recorded closed-loop run.
        samples: its :func:`presample_trace` output at the block stride.
        l0: the run's processing latency (enters ``alpha``).
        road: road geometry for this trace's lateral gating.
    """

    trace: ScenarioTrace
    samples: TraceSamples
    l0: float
    road: Road | None = None


#: Target element count of one tiled solve block: ``base rows x
#: variants x scan instants`` per :meth:`LatencyEngine.solve_rows`
#: call stays near this, bounding peak array memory (~32 MB of
#: float64 threat samples) while amortizing the per-unique-tick ego
#: profile construction across every variant of the block.
_BLOCK_ELEMENTS = 4_000_000


def evaluate_trace_block(
    jobs: Sequence[TraceJob],
    variants: Sequence[ZhuyiParams],
    stride: float,
    rig: CameraRig | None = None,
    strict: bool = True,
) -> list[list[EvaluationSeries]]:
    """Evaluate many traces under many parameter variants in one block.

    The campaign super-cell kernel: instead of one evaluator pass per
    (trace, variant), the whole block shares its array programs —

    * Equation 5 visibility tables build in one
      :meth:`~repro.perception.sensor.CameraRig.visible_actors_traces`
      pass over every trace's concatenated ticks, shared by all
      variants (FOV membership never depends on the Zhuyi constants);
    * variants group by :meth:`~repro.core.parameters.ZhuyiParams.
      solver_grid_key` — within a group, gates, threat samples and the
      candidate grid are common, and only the Eq 1/2 ``c1``/``c2``
      comparisons differ, carried as per-row constraint columns;
    * within a group, traces sharing ``l0`` stack into one
      :meth:`~repro.core.engine.LatencyEngine.trace_grid` whose tick
      axis concatenates their ego motions, and every gated (trace,
      tick, actor, variant) row solves through shared
      :meth:`~repro.core.engine.LatencyEngine.solve_rows` calls.

    Every constituent kernel is bit-identical to its per-trace
    counterpart (see each method's parity argument), so the returned
    series equal per-trace ``backend="batched"`` evaluations element
    for element. Traces with no road while a variant gates laterally
    need per-tick ego frames and quietly take the per-trace batched
    path for that variant group.

    Args:
        jobs: the traces, presampled at ``stride``. Noise-injected
            samples travel self-contained — their detection masks AND
            into the gates and visibility groupings here exactly as
            :meth:`OfflineEvaluator.evaluate` applies them.
        variants: the parameter variants to evaluate each trace under.
        stride: evaluation period (must match every job's samples).
        rig: camera rig (the paper's five-camera default when omitted).
        strict: strict prefix semantics of the EXACT search.

    Returns:
        ``series[j][v]``: job ``j`` evaluated under variant ``v``.
    """
    if not variants:
        raise EstimationError("evaluate_trace_block needs at least one variant")
    if rig is None:
        rig = default_rig()
    for job in jobs:
        if abs(job.samples.stride - stride) > 1e-12:
            raise EstimationError(
                f"presampled stride {job.samples.stride} does not match "
                f"block stride {stride}"
            )
    if not jobs:
        return []

    positions = []
    for job in jobs:
        job_positions = job.samples.actor_positions
        if job_positions is None:
            job_positions = {
                actor_id: (
                    np.array([state.position.x for state in states]),
                    np.array([state.position.y for state in states]),
                )
                for actor_id, states in job.samples.actor_states.items()
            }
        positions.append(job_positions)
    visibility_tables = rig.visible_actors_traces(
        [
            (job.samples.ego_states, job_positions)
            for job, job_positions in zip(jobs, positions)
        ],
        detected=[job.samples.detected for job in jobs],
    )

    output: list[list[EvaluationSeries | None]] = [
        [None] * len(variants) for _ in jobs
    ]

    # Variant groups: equal solver_grid_key = everything but c1/c2
    # shared (grid, gates, ego profiles, threat samples).
    groups: dict[ZhuyiParams, list[int]] = {}
    for v, params in enumerate(variants):
        groups.setdefault(params.solver_grid_key(), []).append(v)

    for vlist in groups.values():
        gparams = variants[vlist[0]]
        engine = LatencyEngine(params=gparams, strict=strict)
        c1s = np.array([variants[v].c1 for v in vlist])
        c2s = np.array([variants[v].c2 for v in vlist])

        # The no-road + lateral-gating combination needs per-tick ego
        # frames for the corridor; those (job, variant) pairs keep the
        # per-trace batched path (identical output by construction).
        stackable: list[int] = []
        for j, job in enumerate(jobs):
            if job.road is None and gparams.gate_lateral:
                for v in vlist:
                    fallback = OfflineEvaluator(
                        params=variants[v],
                        rig=rig,
                        search=LatencySearch(
                            params=variants[v], strict=strict
                        ),
                        road=job.road,
                        stride=stride,
                        backend="batched",
                        noise=job.samples.noise,
                    )
                    output[j][v] = fallback.evaluate(
                        job.trace, l0=job.l0, samples=job.samples
                    )
            else:
                stackable.append(j)

        # Stack traces sharing l0 into one grid (reactions — hence the
        # master time axis — depend on l0).
        l0_groups: dict[float, list[int]] = {}
        for j in stackable:
            l0_groups.setdefault(jobs[j].l0, []).append(j)

        # Per (job, variant): per-tick {actor: latency} dictionaries,
        # gated actors only, filled by the scatter below.
        tables: dict[tuple[int, int], list[dict[str, float | None]]] = {
            (j, v): [{} for _ in jobs[j].samples.times]
            for j in stackable
            for v in vlist
        }

        for l0, job_indices in l0_groups.items():
            motions: list = []
            offsets: list[int] = []
            for j in job_indices:
                offsets.append(len(motions))
                motions.extend(
                    EgoMotion.from_state(state.speed, state.accel, gparams)
                    for state in jobs[j].samples.ego_states
                )
            grid = engine.trace_grid(motions, l0)
            rel_times = np.concatenate([grid.times, grid.reactions])

            # One row per gated (trace, tick, actor): threat samples
            # batch per actor, ego-side arrays batch once per trace.
            row_meta: list[tuple[int, str, np.ndarray]] = []
            tick_chunks: list[np.ndarray] = []
            gap_chunks: list[np.ndarray] = []
            speed_chunks: list[np.ndarray] = []
            for j, offset in zip(job_indices, offsets):
                job = jobs[j]
                samples = job.samples
                assessor = ThreatAssessor(params=gparams, road=job.road)
                ego_rows = assessor.ego_path_rows(samples.ego_states)
                for actor_id, trajectory in samples.actor_trajectories.items():
                    spec = job.trace.actor_spec(actor_id)
                    gate = assessor.could_collide_trace(
                        samples.ego_states,
                        job.trace.ego_spec,
                        trajectory,
                        spec,
                        samples.times,
                        ego_rows=ego_rows,
                    )
                    if samples.detected is not None:
                        # Injected misses gate like geometric
                        # impossibility (same AND evaluate() applies).
                        gate = gate & samples.detected[actor_id]
                    gated = np.flatnonzero(gate)
                    if gated.size == 0:
                        continue
                    gaps, speeds = assessor.sample_threats_trace(
                        [samples.ego_states[i] for i in gated],
                        job.trace.ego_spec,
                        trajectory,
                        spec,
                        samples.times[gated],
                        rel_times,
                        ego_rows=EgoPathRows(
                            xs=ego_rows.xs[gated],
                            ys=ego_rows.ys[gated],
                            s=ego_rows.s[gated],
                            d=ego_rows.d[gated],
                        ),
                    )
                    row_meta.append((j, actor_id, gated))
                    tick_chunks.append(gated + offset)
                    gap_chunks.append(gaps)
                    speed_chunks.append(speeds)
            if not tick_chunks:
                continue
            base_ticks = np.concatenate(tick_chunks)
            base_gaps = np.vstack(gap_chunks)
            base_speeds = np.vstack(speed_chunks)
            # Row -> (job, actor, local tick) for the scatter.
            scatter: list[tuple[int, str, int]] = []
            for j, actor_id, gated in row_meta:
                scatter.extend((j, actor_id, int(i)) for i in gated)
            # Tick-major row order: every solve block then carries all
            # (actor, variant) rows of its ticks together, which is the
            # row density the engine's tick-resident grouped kernel
            # keys on. Pure permutation — rows are independent and the
            # scatter above travels with them.
            tick_order = np.argsort(base_ticks, kind="stable")
            base_ticks = base_ticks[tick_order]
            base_gaps = base_gaps[tick_order]
            base_speeds = base_speeds[tick_order]
            scatter = [scatter[i] for i in tick_order]

            # Variant-tiled solves in base-row blocks: each block's
            # rows repeat once per variant with that variant's c1/c2
            # as per-row constraint columns, so the per-tick ego
            # profile work amortizes across every variant at bounded
            # peak memory.
            n_variants = len(vlist)
            block = max(
                1, int(_BLOCK_ELEMENTS / (n_variants * rel_times.size))
            )
            for start in range(0, base_ticks.size, block):
                stop = min(start + block, base_ticks.size)
                width = stop - start
                results = engine.solve_rows(
                    grid,
                    np.tile(base_ticks[start:stop], n_variants),
                    motions,
                    np.tile(base_gaps[start:stop], (n_variants, 1)),
                    np.tile(base_speeds[start:stop], (n_variants, 1)),
                    constraints=(
                        np.repeat(c1s, width),
                        np.repeat(c2s, width),
                    ),
                )
                for vi, v in enumerate(vlist):
                    for r in range(width):
                        j, actor_id, tick = scatter[start + r]
                        result = results[vi * width + r]
                        tables[(j, v)][tick][actor_id] = result.latency

        # Assemble each (job, variant) series exactly like the
        # single-trace precomputed path: trajectory-ordered latency
        # dictionaries, shared visibility tables, Equation 5 rollup.
        for j in stackable:
            job = jobs[j]
            samples = job.samples
            order = list(samples.actor_trajectories)
            for v in vlist:
                params = variants[v]
                ticks = []
                for i, t0 in enumerate(samples.times):
                    table = tables[(j, v)][i]
                    actor_latencies = {
                        actor_id: table[actor_id]
                        for actor_id in order
                        if actor_id in table
                    }
                    estimates = estimate_camera_fprs(
                        actor_latencies, visibility_tables[j][i], params
                    )
                    ego_state = samples.ego_states[i]
                    ticks.append(
                        EvaluationTick(
                            time=float(t0),
                            camera_estimates=estimates,
                            actor_latencies=actor_latencies,
                            ego_speed=ego_state.speed,
                            ego_accel=ego_state.accel,
                        )
                    )
                output[j][v] = EvaluationSeries(
                    scenario=job.trace.scenario,
                    ticks=ticks,
                    params=params,
                    l0=job.l0,
                )
    return [list(row) for row in output]
