"""Zhuyi model parameters.

Defaults reproduce the paper's experimental configuration (Section 4.1):
``C1 = C2 = 0.9``, ``C3 = 4.9 m/s^2``, ``C4 = 1.1``, ``K = 5``, ``M = 10``
and a latency grid from 1 s down to 33 ms (one 30-FPR frame period) in
33 ms steps (``L = 1s / 33ms = 30`` candidate latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ZhuyiParams:
    """All constants of the Zhuyi model (Section 2 + Section 4.1).

    Attributes:
        c1: conservatism factor on the distance constraint (Eq 1).
        c2: conservatism factor on the velocity constraint (Eq 2).
        c3: minimum braking deceleration, m/s^2 (floor of ``a_b``).
        c4: scale on the ego's current deceleration when braking harder
            than ``c3`` is already in progress (``a_b = max(C3, C4*a0)``).
        k: number of perception frames needed to confirm an actor; enters
            the confirmation delay ``alpha = K * (l - l0)``.
        m: maximum iterations of the accelerated ``t_n`` search (Eq 3).
        l_max: largest candidate latency probed, seconds.
        l_min: smallest candidate latency probed, seconds.
        dl: latency grid step, seconds.
        tn_step: fallback/naive time step of the ``t_n`` search, seconds.
        horizon: maximum prediction horizon considered per actor, seconds.
        horizon_margin: slack added after the ego's stopping time when
            bounding the ``t_n`` search, seconds.
        lateral_margin: extra lateral clearance (metres) added to the two
            half-widths when gating which actors can collide at all.
        gate_lateral: whether to skip actors whose predictions never enter
            the ego's lane corridor (the paper "considers the possibility
            of a collision"; this is that consideration).
        ego_speed_cap: optional cap on the ego speed while coasting through
            the reaction window (models a speed limiter); ``None`` = uncapped.
    """

    c1: float = 0.9
    c2: float = 0.9
    c3: float = 4.9
    c4: float = 1.1
    k: int = 5
    m: int = 10
    l_max: float = 1.0
    l_min: float = 1.0 / 30.0
    dl: float = 1.0 / 30.0
    tn_step: float = 0.01
    horizon: float = 8.0
    horizon_margin: float = 1.0
    lateral_margin: float = 0.25
    gate_lateral: bool = True
    ego_speed_cap: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.c1 <= 1.0:
            raise ConfigurationError(f"C1 must be in (0, 1], got {self.c1}")
        if not 0.0 < self.c2 <= 1.0:
            raise ConfigurationError(f"C2 must be in (0, 1], got {self.c2}")
        if self.c3 <= 0.0:
            raise ConfigurationError(f"C3 must be positive, got {self.c3}")
        if self.c4 < 1.0:
            raise ConfigurationError(
                f"C4 must be at least 1 (braking never weakens), got {self.c4}"
            )
        if self.k < 0:
            raise ConfigurationError(f"K must be non-negative, got {self.k}")
        if self.m < 1:
            raise ConfigurationError(f"M must be at least 1, got {self.m}")
        if not 0.0 < self.l_min <= self.l_max:
            raise ConfigurationError(
                f"need 0 < l_min <= l_max, got {self.l_min}, {self.l_max}"
            )
        if self.dl <= 0.0:
            raise ConfigurationError(f"dl must be positive, got {self.dl}")
        if self.tn_step <= 0.0:
            raise ConfigurationError(f"tn_step must be positive, got {self.tn_step}")
        if self.horizon <= 0.0 or self.horizon_margin < 0.0:
            raise ConfigurationError("horizon settings must be positive")
        if self.lateral_margin < 0.0:
            raise ConfigurationError("lateral margin must be non-negative")

    @property
    def num_latency_steps(self) -> int:
        """The paper's ``L`` — the size of the candidate-latency grid."""
        return len(self.latency_grid())

    def latency_grid(self) -> list[float]:
        """Candidate latencies, descending multiples of ``dl``.

        With the defaults this is 1.0, 29/30, ..., 1/30 — thirty values,
        matching the paper's ``L = 1s / 33ms = 30`` (the paper's "33 ms"
        is one 30-FPR frame period), so the corresponding FPR values are
        the round 30/k.
        """
        grid: list[float] = []
        value = self.l_min
        while value <= self.l_max + 1e-12:
            grid.append(round(value, 9))
            # reprolint: disable=DET003 -- every appended entry is
            # re-quantized to the 1 ns grid (round(value, 9)), so the
            # accumulation cannot drift past the rounding quantum; the
            # rounded ladder is the paper's pinned L grid.
            value += self.dl
        grid.reverse()
        return grid

    def fpr_floor(self) -> float:
        """Smallest reportable FPR (actor poses no constraint)."""
        return 1.0 / self.l_max

    def fpr_cap(self) -> float:
        """Largest reportable FPR (latency at the grid minimum)."""
        return 1.0 / self.l_min

    def solver_grid_key(self) -> "ZhuyiParams":
        """This parameter set with the Eq 1/2 factors normalized away.

        Two variants whose keys compare equal share *everything* the
        latency kernel precomputes — the candidate grid and reaction
        times (``l_max``/``l_min``/``dl``/``k``), the ego profile
        (``c3``/``c4``/``ego_speed_cap``), the scan grid (``tn_step``/
        ``horizon_margin``) and the collision gating (``gate_lateral``/
        ``lateral_margin``/``horizon``) — and differ only in where the
        Eq 1/2 feasibility comparisons draw the line. Such variants can
        be solved together through one cross-trace kernel with per-row
        ``c1``/``c2`` columns (the campaign super-cell path); anything
        else needs its own grid.
        """
        return replace(self, c1=1.0, c2=1.0)

    def confirmation_delay(self, latency: float, l0: float) -> float:
        """The paper's ``alpha = K * (l - l0)``, clamped at zero.

        ``l0`` is the processing latency the system is currently running
        at; probing a latency faster than the current one cannot produce
        a negative confirmation delay, hence the clamp.
        """
        return max(0.0, self.k * (latency - l0))
