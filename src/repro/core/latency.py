"""The tolerable-latency search — Equations 1-3 of the paper.

For each candidate latency ``l`` (descending from ``l_max`` in ``dl``
steps) the search asks: is there a check time ``t_n >= t_r`` at which
both safety constraints hold?

* Eq 1 (distance):  ``d_e1 + d_e2 <= s_n * C1``
* Eq 2 (velocity):  ``0 <= v_en <= v_an * C2``

The first (largest) feasible ``l`` is the tolerable latency.

Two inner-search strategies are provided:

* ``EXACT`` (default) — a dense scan over ``t_n`` at ``tn_step``
  resolution ("a naive approach is to increment t_n by one timestep and
  re-check"), vectorized with numpy. By default the scan is *strict*:
  the distance constraint must hold at every scanned time up to ``t_n``,
  not only at ``t_n`` itself. Without this, a slower actor that keeps
  moving away makes some far-future ``t_n`` trivially feasible even when
  the ego would have driven through the actor during its reaction window
  — the point-check loophole. Strict semantics reproduce the paper's
  reported numbers on both braking and receding actors.
* ``PAPER`` — the accelerated stepping of Equation 3: start at
  ``t_n = t_r`` and take at most ``M`` adaptive steps sized by how long
  the ego needs to consume the distance headroom (``dt_d``) or brake to
  the target speed (``dt_v``). Equation 3's branch conditions overlap;
  this implements the ordered reading (``dt_d`` first). Kept as the
  performance-oriented variant and exercised by the ablation benchmark.

A latency of ``None`` means even ``l_min`` was infeasible: the model
predicts an unavoidable collision (the white region of Figure 8).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.ego_profile import EgoMotion, ego_profile_arrays
from repro.core.parameters import ZhuyiParams
from repro.core.threat import LongitudinalThreat, sample_grid
from repro.errors import ConfigurationError

#: Latency value used in aggregations for unavoidable-collision verdicts.
UNAVOIDABLE_LATENCY = 0.0

#: Numerical slack on the constraint comparisons.
_EPS = 1e-9

#: Latency-solver backends: the scalar per-candidate reference loop,
#: the batched array program of :mod:`repro.core.engine` (one
#: vectorized kernel per latency grid), or the cross-trace campaign
#: stacking (``crosstrace``: whole groups of traces and parameter
#: variants solved through shared kernels — see
#: :func:`repro.core.evaluator.evaluate_trace_block`). All three
#: produce bit-identical results; only the clock differs.
BACKENDS = ("scalar", "batched", "crosstrace")


class SearchStrategy(enum.Enum):
    """Inner ``t_n``-search strategy."""

    PAPER = "paper"
    EXACT = "exact"


@dataclass(frozen=True)
class LatencyResult:
    """Outcome of one per-actor tolerable-latency search.

    Attributes:
        latency: the tolerable latency in seconds, or ``None`` when no
            candidate latency is safe (unavoidable collision).
        check_time: the feasible ``t_n`` found for that latency (relative
            to ``t0``), or ``None``.
        iterations: number of constraint evaluations performed — used to
            validate the Section 4.2 compute-demand model.
    """

    latency: float | None
    check_time: float | None
    iterations: int

    @property
    def unavoidable(self) -> bool:
        """True when no latency in the grid keeps the ego safe."""
        return self.latency is None

    def latency_or_zero(self) -> float:
        """The latency with ``None`` mapped to :data:`UNAVOIDABLE_LATENCY`."""
        return UNAVOIDABLE_LATENCY if self.latency is None else self.latency


@dataclass
class LatencySearch:
    """Per-actor tolerable-latency solver.

    A thin facade over two equivalent solvers: the scalar reference
    loop below (one latency candidate at a time), and the batched array
    kernel of :class:`repro.core.engine.LatencyEngine` (the whole grid
    at once, bit-identical results). Tick-level consumers that batch
    actors should call the engine directly; this facade serves
    per-actor callers.

    Attributes:
        params: the Zhuyi constants.
        strategy: inner-search strategy (dense reference scan, or the
            paper's Eq 3 accelerated stepping).
        strict: EXACT strategy only — require the distance constraint on
            the whole prefix up to ``t_n`` (see the module docstring).
        backend: ``"scalar"`` runs the reference loops; ``"batched"``
            routes EXACT searches through the engine kernel. The PAPER
            strategy is inherently sequential (each Eq 3 step depends on
            the previous gap) and always runs scalar.
    """

    params: ZhuyiParams = field(default_factory=ZhuyiParams)
    strategy: SearchStrategy = SearchStrategy.EXACT
    strict: bool = True
    backend: str = "scalar"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown latency backend {self.backend!r}; "
                f"choose from {BACKENDS}"
            )
        self._engine = None

    def tolerable_latency(
        self,
        ego: EgoMotion,
        threat: LongitudinalThreat,
        l0: float,
    ) -> LatencyResult:
        """Search the latency grid (descending) for the largest safe ``l``.

        ``l0`` is the processing latency the system currently runs at; it
        enters the confirmation delay ``alpha = K * (l - l0)``.
        """
        if (
            self.backend == "batched"
            and self.strategy is SearchStrategy.EXACT
        ):
            if self._engine is None:
                from repro.core.engine import LatencyEngine

                self._engine = LatencyEngine(
                    params=self.params, strict=self.strict
                )
            return self._engine.solve(ego, threat, l0)
        iterations = 0
        for latency in self.params.latency_grid():
            reaction_time = latency + self.params.confirmation_delay(latency, l0)
            feasible_tn, used = self._search_check_time(ego, threat, reaction_time)
            iterations += used
            if feasible_tn is not None:
                return LatencyResult(
                    latency=latency,
                    check_time=feasible_tn,
                    iterations=iterations,
                )
        return LatencyResult(latency=None, check_time=None, iterations=iterations)

    # ------------------------------------------------------------------
    # inner search over t_n
    # ------------------------------------------------------------------

    def _search_check_time(
        self,
        ego: EgoMotion,
        threat: LongitudinalThreat,
        reaction_time: float,
    ) -> tuple[float | None, int]:
        """Find a feasible ``t_n`` for a fixed reaction time.

        Returns ``(t_n or None, constraint evaluations used)``.
        """
        horizon = (
            ego.stop_time_after(reaction_time, self.params.ego_speed_cap)
            + self.params.horizon_margin
        )
        if self.strategy is SearchStrategy.PAPER:
            return self._paper_search(ego, threat, reaction_time, horizon)
        return self._exact_search(ego, threat, reaction_time, horizon)

    def _evaluate(
        self,
        ego: EgoMotion,
        threat: LongitudinalThreat,
        reaction_time: float,
        check_time: float,
    ) -> tuple[float, float, float]:
        """Constraint gaps at ``check_time``.

        Returns ``(gap_d, gap_v, v_en)`` where ``gap_d >= 0`` means the
        distance constraint (Eq 1) holds with that much headroom and
        ``gap_v <= 0`` means the velocity constraint (Eq 2) holds.
        """
        travelled, v_en = ego.total_travel(
            reaction_time, check_time, self.params.ego_speed_cap
        )
        s_n = threat.gap_at(check_time)
        v_an = threat.actor_speed_at(check_time)
        gap_d = self.params.c1 * s_n - travelled
        gap_v = v_en - self.params.c2 * v_an
        return gap_d, gap_v, v_en

    def _paper_search(
        self,
        ego: EgoMotion,
        threat: LongitudinalThreat,
        reaction_time: float,
        horizon: float,
    ) -> tuple[float | None, int]:
        """Equation 3: adaptive stepping, at most ``M`` attempts."""
        a_b = ego.braking_decel
        check_time = reaction_time
        evaluations = 0
        for _ in range(self.params.m):
            gap_d, gap_v, v_en = self._evaluate(
                ego, threat, reaction_time, check_time
            )
            evaluations += 1
            if gap_d >= -_EPS and gap_v <= _EPS:
                return check_time, evaluations

            # Equation 3, ordered reading: with distance headroom left,
            # jump by the time the braking ego needs to consume it.
            dt_d = (v_en + math.sqrt(v_en**2 + 2.0 * a_b * abs(gap_d))) / a_b
            if gap_d >= 0.0:
                step = dt_d
            elif gap_v > 0.0:
                step = gap_v / a_b
            else:
                step = dt_d
            step = max(step, self.params.tn_step)

            if check_time >= horizon:
                break
            check_time = min(check_time + step, horizon)
        return None, evaluations

    def _exact_search(
        self,
        ego: EgoMotion,
        threat: LongitudinalThreat,
        reaction_time: float,
        horizon: float,
    ) -> tuple[float | None, int]:
        """Dense scan over ``t_n`` — the reference implementation.

        In strict mode the scan starts at ``t = 0`` so that a distance
        violation anywhere before the candidate ``t_n`` (an interim
        collision during the reaction window) disqualifies it.
        """
        step = self.params.tn_step
        # Scan a grid anchored at 0 in both modes so the strict scan's
        # feasible set is an exact subset of the point scan's (the grids
        # sample identical instants).
        times = np.arange(0.0, horizon + step, step)
        if times.size == 0:
            return None, 0
        # The search domain starts at t_n = t_r, which need not be a grid
        # multiple; a feasible window narrower than one step that opens
        # exactly at t_r (e.g. a near-spent distance budget) would fall
        # between samples, making the reference scan claim infeasibility
        # where the paper's t_r-anchored stepping is feasible.
        if reaction_time <= horizon:
            times = np.union1d(times, [reaction_time])

        distance, speed = ego_profile_arrays(
            ego, reaction_time, times, self.params.ego_speed_cap
        )
        gaps, actor_speeds = sample_grid(threat, times)

        distance_ok = distance <= self.params.c1 * gaps + _EPS
        velocity_ok = speed <= self.params.c2 * actor_speeds + _EPS
        candidate = distance_ok & velocity_ok & (times >= reaction_time - _EPS)

        if self.strict:
            violations = np.flatnonzero(~distance_ok)
            if violations.size:
                candidate[violations[0]:] = False

        feasible = np.flatnonzero(candidate)
        if feasible.size == 0:
            return None, int(times.size)
        index = int(feasible[0])
        # Evaluations used: everything scanned up to the hit (the strict
        # prefix must be scanned regardless).
        return float(times[index]), index + 1
