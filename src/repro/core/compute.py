"""The Section 4.2 compute-demand model.

"The work done by the Zhuyi model is equal to |A| x |T| x M x L x C,
where |A| and |T| are the number of actors and predicted trajectories
per actor, and C is the number of ops per iteration, which is about 100.
For a scenario with 2 actors and a single future prediction, the compute
demand is capped at 60 kilo-ops. For processors offering 10+ GOPS, the
Zhuyi model should execute within 2 ms."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComputeDemandModel:
    """Analytic op-count model of one Zhuyi invocation.

    Attributes:
        ops_per_iteration: the paper's ``C`` — arithmetic operations per
            constraint-check iteration (about 100).
    """

    ops_per_iteration: int = 100

    def __post_init__(self) -> None:
        if self.ops_per_iteration <= 0:
            raise ConfigurationError("ops per iteration must be positive")

    def max_iterations(self, params: ZhuyiParams) -> int:
        """``M x L``: iteration cap for one actor-trajectory pair."""
        return params.m * params.num_latency_steps

    def ops(
        self,
        num_actors: int,
        num_trajectories: int,
        params: ZhuyiParams,
    ) -> int:
        """``|A| x |T| x M x L x C``: the worst-case op count."""
        if num_actors < 0 or num_trajectories < 0:
            raise ConfigurationError("counts must be non-negative")
        return (
            num_actors
            * num_trajectories
            * self.max_iterations(params)
            * self.ops_per_iteration
        )

    def ops_from_iterations(self, iterations: int) -> int:
        """Op count for a *measured* number of iterations.

        The latency search reports how many constraint evaluations it
        actually performed (usually far below the ``M x L`` cap because
        the outer loop terminates at the first feasible latency).
        """
        if iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        return iterations * self.ops_per_iteration

    def execution_time(self, ops: int, throughput_gops: float) -> float:
        """Seconds to execute ``ops`` at a given throughput (GOPS)."""
        if throughput_gops <= 0.0:
            raise ConfigurationError("throughput must be positive")
        return ops / (throughput_gops * 1e9)
