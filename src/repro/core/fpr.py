"""Equation 5 — per-camera frame processing rate from per-actor latencies.

``FPR_sensor = 1 / min over actors in the camera's FOV of l_actor``.

A camera seeing no threatening actor needs only the floor rate
(``1 / l_max``); a camera whose most binding actor admits no safe latency
at all is pinned at the cap (``1 / l_min``) and flagged unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.latency import UNAVOIDABLE_LATENCY
from repro.core.parameters import ZhuyiParams


@dataclass(frozen=True)
class CameraEstimate:
    """Zhuyi's output for one camera at one instant.

    Attributes:
        camera: camera name.
        latency: the binding (minimum) tolerable latency among actors in
            this camera's FOV, seconds; ``l_max`` when the FOV is clear.
        fpr: the Equation 5 processing-rate requirement (frames/second).
        binding_actor: id of the actor that set the minimum, or ``None``.
        unavoidable: True when the binding actor admits no safe latency.
        actor_count: number of (threatening) actors in the FOV.
    """

    camera: str
    latency: float
    fpr: float
    binding_actor: Hashable | None
    unavoidable: bool
    actor_count: int


def fpr_from_latency(latency: float | None, params: ZhuyiParams) -> float:
    """Equation 5 for one latency value, clamped to the model's grid.

    ``None`` (or zero) latency — an unavoidable collision verdict — maps
    to the cap ``1 / l_min``: the model cannot ask for more than the
    fastest rate it reasons about.
    """
    if latency is None or latency <= UNAVOIDABLE_LATENCY:
        return params.fpr_cap()
    clamped = min(max(latency, params.l_min), params.l_max)
    return 1.0 / clamped


def estimate_camera_fprs(
    actor_latencies: Mapping[Hashable, float | None],
    camera_actors: Mapping[str, Sequence[Hashable]],
    params: ZhuyiParams,
) -> dict[str, CameraEstimate]:
    """Equation 5 across a camera rig.

    Args:
        actor_latencies: per-actor aggregated tolerable latency; ``None``
            marks an unavoidable collision verdict. Actors absent from
            the mapping were gated out as non-threats (latency ``l_max``).
        camera_actors: actor ids inside each camera's FOV at ``t0``.
        params: the Zhuyi constants.

    Returns:
        One :class:`CameraEstimate` per camera in ``camera_actors``.
    """
    estimates: dict[str, CameraEstimate] = {}
    for camera, members in camera_actors.items():
        binding_actor: Hashable | None = None
        binding_latency = params.l_max
        unavoidable = False
        threat_count = 0
        for actor in members:
            if actor not in actor_latencies:
                continue  # gated out: no collision possible
            threat_count += 1
            latency = actor_latencies[actor]
            effective = (
                UNAVOIDABLE_LATENCY if latency is None else latency
            )
            if effective < binding_latency:
                binding_latency = effective
                binding_actor = actor
                unavoidable = latency is None
        estimates[camera] = CameraEstimate(
            camera=camera,
            latency=binding_latency,
            fpr=fpr_from_latency(
                None if unavoidable else binding_latency, params
            ),
            binding_actor=binding_actor,
            unavoidable=unavoidable,
            actor_count=threat_count,
        )
    return estimates
