"""Unit conversions and physical constants shared across the library.

All internal quantities are SI: metres, seconds, metres/second,
metres/second^2 and radians. The scenario catalog and the paper quote
speeds in miles per hour and latencies in milliseconds; these helpers keep
the conversions explicit and in one place.
"""

from __future__ import annotations

import math

#: Metres in one mile.
METERS_PER_MILE = 1609.344

#: Seconds in one hour.
SECONDS_PER_HOUR = 3600.0

#: Standard gravity, m/s^2. Used to sanity-bound braking decelerations.
GRAVITY = 9.80665


def mph_to_mps(mph: float) -> float:
    """Convert miles per hour to metres per second."""
    return mph * METERS_PER_MILE / SECONDS_PER_HOUR


def mps_to_mph(mps: float) -> float:
    """Convert metres per second to miles per hour."""
    return mps * SECONDS_PER_HOUR / METERS_PER_MILE


def kmh_to_mps(kmh: float) -> float:
    """Convert kilometres per hour to metres per second."""
    return kmh / 3.6


def mps_to_kmh(mps: float) -> float:
    """Convert metres per second to kilometres per hour."""
    return mps * 3.6


def seconds_to_ms(seconds: float) -> int:
    """Convert seconds to integer milliseconds (round to nearest)."""
    return int(round(seconds * 1000.0))


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1000.0


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def wrap_angle(angle: float) -> float:
    """Wrap an angle in radians to the interval (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def time_grid_count(span: float, step: float) -> int:
    """Samples on the closed-form grid ``0, step, 2*step, ... <= span``.

    The one sanctioned way to size a fixed-stride time grid: the count
    is ``floor(span / step + 1e-9) + 1`` and the instants are
    ``step * arange(count)``. Accumulating ``t += step`` instead drifts
    — repeated float addition makes the final sample's inclusion depend
    on the operand magnitudes, so near-multiple spans gain or lose a
    sample. The evaluator tick grid (PR 1) and the prediction sample
    grids use this closed form so batched consumers can rebuild any
    prefix of the grid bit-exactly.
    """
    if step <= 0.0:
        raise ValueError(f"grid step must be positive, got {step}")
    if span < 0.0:
        raise ValueError(f"grid span must be non-negative, got {span}")
    return int(math.floor(span / step + 1e-9)) + 1
