"""Campaign execution: sequential or fanned out across processes.

Each run is a pure function of its :class:`RunSpec` — the scenario
choreography is seeded by the spec's seed, the perception noise by a
fixed offset of it — so execution order and worker count cannot change
any summary. The runner exploits that three ways:

* ``workers=1`` is a plain loop; ``workers>1`` submits work to a
  ``ProcessPoolExecutor`` and reassembles summaries in run-index order.
* Runs sharing a (scenario, seed, fpr) **cell** differ only in their
  ``ZhuyiParams`` variant, which the closed-loop simulation never
  reads; the cell's trace is simulated once and re-evaluated per
  variant (:func:`execute_cell`), turning an N-variant campaign into
  ~1 simulation + N cheap offline evaluations.
* With ``out=`` the runner streams each summary to JSONL the moment it
  completes (via :class:`repro.batch.results.CampaignWriter`), so a
  killed campaign keeps its finished runs and :meth:`CampaignRunner.resume`
  executes only the remainder — producing a file identical to an
  uninterrupted run's, footer wall-clock aside.

A run that raises is captured as a failed :class:`RunSummary`
(``error`` set) instead of aborting the campaign; a worker crash
surfaces the same way.
"""

# reprolint: disable-file=DET002 -- perf_counter here times campaign
# execution for the `completed` footer and CampaignResult.elapsed only;
# run summaries are pure functions of their RunSpec and never see it
# (the resume byte-parity tests would catch any leak).

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.batch.campaign import Campaign, RunSpec

if TYPE_CHECKING:  # runtime never needs the class, only the object
    from repro.store import TraceStore
from repro.batch.results import CampaignResult, CampaignWriter, RunSummary
from repro.core.evaluator import (
    OfflineEvaluator,
    TraceJob,
    evaluate_trace_block,
    presample_trace,
)
from repro.errors import ConfigurationError

#: Called after each completed run with (done, total, summary).
ProgressHook = Callable[[int, int, RunSummary], None]


def _failure_summary(
    spec: RunSpec, error: str, duration: float = 0.0
) -> RunSummary:
    return RunSummary(
        index=spec.index,
        scenario=spec.scenario,
        seed=spec.seed,
        fpr=spec.fpr,
        variant=spec.variant,
        collided=False,
        duration=duration,
        error=error,
    )


def _cell_contract_error(specs: Sequence[RunSpec]) -> str | None:
    """The cell-contract violation in ``specs``, if any.

    A cell's specs must share their (scenario, seed, fpr) coordinates —
    they are evaluated against one simulated trace — and their stride,
    because the trace is presampled once for every variant. Returns the
    failure text to fold into each spec's summary, or ``None``.
    """
    cell = (specs[0].scenario, specs[0].seed, specs[0].fpr)
    for spec in specs:
        if (spec.scenario, spec.seed, spec.fpr) != cell:
            return (
                "ConfigurationError: execute_cell needs specs from a "
                f"single (scenario, seed, fpr) cell, got {cell} and "
                f"({spec.scenario}, {spec.seed}, {spec.fpr})"
            )
    strides = {spec.stride for spec in specs}
    if len(strides) > 1:
        return (
            "ConfigurationError: execute_cell needs one stride per "
            f"cell (the trace is presampled once), got {sorted(strides)}"
        )
    noises = {spec.noise for spec in specs}
    if len(noises) > 1:
        return (
            "ConfigurationError: execute_cell needs one noise setting "
            "per cell (the trace is presampled once), got "
            f"{sorted(map(str, noises))}"
        )
    return None


def _simulate_cell(
    specs: Sequence[RunSpec],
    store: "TraceStore | None" = None,
) -> tuple[list[RunSummary] | None, object, object]:
    """Simulate (or load) one validated cell's closed-loop trace.

    Returns ``(early, built, trace)``: ``early`` carries the per-spec
    summaries when the cell ends before evaluation (simulation failure,
    or the paper's collided-run N/A convention), else ``None`` with the
    built scenario and clean trace to evaluate.

    With a ``store``, the cell consults it before simulating — the
    simulate-once path. A hit replaces ``built.run()`` (the dominant
    cost; ``build_scenario`` still runs for the road geometry, which is
    cheap and not recorded) with a memory-mapped column load whose
    evaluation is byte-identical to the fresh trace's. A miss simulates
    and records before returning, collisions included, so repeat
    campaigns skip even the colliding cells.
    """
    from repro.scenarios.catalog import build_scenario

    cell = (specs[0].scenario, specs[0].seed, specs[0].fpr)
    try:
        built = build_scenario(cell[0], seed=cell[1])
        trace = None
        if store is not None:
            trace = store.get(store.key(*cell))
        if trace is None:
            trace = built.run(fpr=cell[2])
            if store is not None:
                store.put(store.key(*cell), trace)
    except Exception as exc:  # noqa: BLE001 - campaign-level failure capture
        error = f"{type(exc).__name__}: {exc}"
        return [_failure_summary(spec, error) for spec in specs], None, None

    if trace.has_collision:
        # The paper's convention: collided runs report N/A, no estimate.
        return (
            [
                RunSummary(
                    index=spec.index,
                    scenario=spec.scenario,
                    seed=spec.seed,
                    fpr=spec.fpr,
                    variant=spec.variant,
                    collided=True,
                    collision_time=trace.first_collision_time,
                    duration=trace.duration,
                )
                for spec in specs
            ],
            built,
            trace,
        )
    return None, built, trace


def _success_summary(spec: RunSpec, series, trace) -> RunSummary:
    """The Table 1 quantities of one clean evaluated run."""
    return RunSummary(
        index=spec.index,
        scenario=spec.scenario,
        seed=spec.seed,
        fpr=spec.fpr,
        variant=spec.variant,
        collided=False,
        max_fpr=series.max_fpr(),
        max_total_fpr=series.max_total_fpr(spec.cameras),
        fraction_of_provision=series.fraction_of_provision(
            spec.provisioned_fpr, spec.cameras
        ),
        camera_max_fpr={
            camera: series.max_fpr(camera) for camera in spec.cameras
        },
        ticks=len(series.ticks),
        duration=trace.duration,
    )


def _evaluate_cell(
    specs: Sequence[RunSpec], built, trace
) -> list[RunSummary]:
    """Evaluate a simulated cell's trace per variant (per-cell path)."""
    summaries = []
    samples = None  # strides are cell-uniform: one sampling per cell
    for spec in specs:
        try:
            if samples is None:
                samples = presample_trace(
                    trace, spec.stride, noise=spec.noise
                )
            evaluator = OfflineEvaluator(
                params=spec.resolved_params(),
                road=built.road,
                stride=spec.stride,
                backend=spec.backend,
                noise=spec.noise,
            )
            series = evaluator.evaluate(trace, samples=samples)
            summaries.append(_success_summary(spec, series, trace))
        except Exception as exc:  # noqa: BLE001 - per-variant failure capture
            summaries.append(
                _failure_summary(
                    spec,
                    f"{type(exc).__name__}: {exc}",
                    duration=trace.duration,
                )
            )
    return summaries


def _close_trace(trace: object) -> None:
    """Release a store-backed trace's memmap handles, if it has any.

    Fresh in-memory traces have no ``close``; column-backed ones
    (:class:`repro.store.ColumnarTrace`) drop their column references
    and close the bundle's file descriptors deterministically — what
    keeps a long sharded campaign's open-FD count flat instead of
    growing per warm cell.
    """
    close = getattr(trace, "close", None)
    if close is not None:
        close()


def execute_cell(
    specs: Sequence[RunSpec],
    store: "TraceStore | None" = None,
) -> list[RunSummary]:
    """Run one (scenario, seed, fpr) cell for every requested variant.

    The closed-loop simulation depends only on the cell coordinates —
    ``ZhuyiParams`` variants enter nothing but the offline evaluator,
    which is a pure function of (trace, params). So the cell simulates
    its trace once, presamples the trajectories once (also
    param-independent) and evaluates per variant. With a single variant
    this is exactly the old one-run-one-simulation path; with N
    variants it is the cross-variant trace cache. A ``store`` extends
    the cache across campaigns: the cell loads its recorded trace when
    present and records it otherwise (see :func:`_simulate_cell`), with
    byte-identical summaries either way.

    Args:
        specs: the cell's runs — same scenario, seed, fpr and stride,
            one per variant, in grid order.
        store: optional :class:`repro.store.TraceStore` to consult
            before simulating and to record misses into.

    Returns:
        One summary per spec, in the given order. Never raises: a
        cell-contract violation (mixed cell coordinates or mixed
        strides) is folded into every spec's summary, as is a
        simulation failure; an evaluation failure only into the failing
        variant's (with the trace's duration preserved).
    """
    if not specs:
        return []
    contract_error = _cell_contract_error(specs)
    if contract_error is not None:
        return [_failure_summary(spec, contract_error) for spec in specs]
    early, built, trace = _simulate_cell(specs, store)
    try:
        if early is not None:
            return early
        return _evaluate_cell(specs, built, trace)
    finally:
        _close_trace(trace)


def execute_supercell(
    cells: Sequence[Sequence[RunSpec]],
    store: "TraceStore | None" = None,
) -> list[RunSummary]:
    """Run a block of cells through the cross-trace evaluation kernel.

    The ``"crosstrace"`` backend's unit of work: each cell still
    simulates its own trace (choreographies are independent), but the
    surviving traces evaluate *together* — every (trace, tick, actor,
    variant) row of the block solves through the shared array programs
    of :func:`repro.core.evaluator.evaluate_trace_block`, amortizing
    the candidate grids, visibility passes and ego profiles across the
    whole block. Summaries are byte-identical to per-cell
    :func:`execute_cell` execution (the block kernel's parity
    contract).

    Never raises, like :func:`execute_cell`: contract violations,
    simulation failures and collisions resolve per cell exactly as
    there, and if the block kernel itself fails the surviving cells
    fall back to the per-cell batched evaluation (keeping per-variant
    failure granularity).

    Args:
        cells: the block's cells, each a single-cell spec list sharing
            one variant sequence and stride across the block (the
            :func:`_group_supercells` grouping contract).

    Returns:
        One summary per spec, cells in the given order, specs in
        per-cell order.
    """
    results: list[list[RunSummary]] = [[] for _ in cells]
    survivors: list[tuple[int, Sequence[RunSpec], object, object]] = []
    opened: list[object] = []
    try:
        for pos, specs in enumerate(cells):
            if not specs:
                continue
            contract_error = _cell_contract_error(specs)
            if contract_error is not None:
                results[pos] = [
                    _failure_summary(spec, contract_error) for spec in specs
                ]
                continue
            early, built, trace = _simulate_cell(specs, store)
            if trace is not None:
                opened.append(trace)
            if early is not None:
                results[pos] = early
            else:
                survivors.append((pos, specs, built, trace))
        results = _evaluate_supercell(results, survivors)
    finally:
        # Drop block-local views before closing store-backed handles.
        survivors = []
        for trace in opened:
            _close_trace(trace)
    return [summary for cell_result in results for summary in cell_result]


def _evaluate_supercell(
    results: list[list[RunSummary]],
    survivors: list[tuple[int, Sequence[RunSpec], object, object]],
) -> list[list[RunSummary]]:
    """Evaluate a supercell's surviving traces through the block kernel."""
    if survivors:
        lead = survivors[0][1]
        variants = [spec.resolved_params() for spec in lead]
        stride = lead[0].stride
        # Cells that do not share the block's variant sequence or
        # stride cannot ride its kernels; they evaluate per cell
        # (defensive — _group_supercells never builds such blocks).
        mismatched = [
            entry
            for entry in survivors
            if [spec.resolved_params() for spec in entry[1]] != variants
            or entry[1][0].stride != stride
        ]
        for pos, specs, built, trace in mismatched:
            results[pos] = _evaluate_cell(specs, built, trace)
        survivors = [entry for entry in survivors if entry not in mismatched]
    if survivors:
        try:
            # Per-cell noise rides inside the samples (detection masks
            # and perturbed states), so cells with different derived
            # noise seeds still share one block's kernels.
            jobs = [
                TraceJob(
                    trace=trace,
                    samples=presample_trace(
                        trace, stride, noise=cell_specs[0].noise
                    ),
                    l0=trace.default_l0(),
                    road=built.road,
                )
                for _, cell_specs, built, trace in survivors
            ]
            block = evaluate_trace_block(jobs, variants, stride)
            for (pos, specs, _, trace), series_row in zip(survivors, block):
                results[pos] = [
                    _success_summary(spec, series, trace)
                    for spec, series in zip(specs, series_row)
                ]
        except Exception:  # noqa: BLE001 - block-level failure capture
            # The parity reference doubles as the failure fallback: a
            # block kernel error demotes the surviving cells to the
            # per-cell batched path, which keeps per-variant failure
            # granularity instead of failing the whole block.
            for pos, specs, built, trace in survivors:
                results[pos] = _evaluate_cell(specs, built, trace)
    return results


def execute_run(spec: RunSpec) -> RunSummary:
    """Run one grid cell end to end: closed loop, then offline Zhuyi.

    A one-spec :func:`execute_cell`. Never raises — failures are folded
    into the summary so a single bad cell cannot take down a
    thousand-run campaign. The summary is a pure function of the spec:
    re-executing it, on any machine with any worker count, reproduces
    it byte for byte.

    Args:
        spec: the fully-determined run to execute.

    Returns:
        The run's :class:`RunSummary` (``error`` set on failure).
    """
    return execute_cell([spec])[0]


def _group_cells(specs: Sequence[RunSpec]) -> list[list[RunSpec]]:
    """Group consecutive specs sharing a (scenario, seed, fpr) cell.

    Grid order puts variants innermost, so all of a cell's variants are
    adjacent; grouping preserves overall run order.
    """
    cells: list[list[RunSpec]] = []
    for spec in specs:
        key = (spec.scenario, spec.seed, spec.fpr)
        if cells and (
            cells[-1][0].scenario,
            cells[-1][0].seed,
            cells[-1][0].fpr,
        ) == key:
            cells[-1].append(spec)
        else:
            cells.append([spec])
    return cells


def _group_supercells(
    cells: Sequence[Sequence[RunSpec]], limit: int
) -> list[list[Sequence[RunSpec]]]:
    """Group consecutive cells into :func:`execute_supercell` blocks.

    Consecutive cells join a block while they share the same variant
    sequence and stride (the block kernel's grouping contract — grid
    expansion makes this true for every cell of one campaign) and the
    block holds fewer than ``limit`` cells. The cap bounds both a
    worker's peak memory (each cell's trace and presamples are alive
    at once) and the scheduling granularity of the parallel path.
    """
    blocks: list[list[Sequence[RunSpec]]] = []
    key = None
    for cell in cells:
        cell_key = (
            tuple(spec.variant for spec in cell),
            cell[0].stride if cell else None,
        )
        if blocks and cell_key == key and len(blocks[-1]) < limit:
            blocks[-1].append(cell)
        else:
            blocks.append([cell])
            key = cell_key
    return blocks


class _OrderedSink:
    """Streams summaries to a writer in a fixed index order.

    Parallel cells complete out of order; the sink buffers completions
    until every earlier index in the sequence has been written, keeping
    the on-disk line order deterministic (and hence resumable files
    byte-comparable to uninterrupted ones). The buffer is bounded by
    the executor's admission control: at most ``max_pending`` tasks
    are in flight, each completing at most ``supercell x variants``
    summaries, so no more than ``max_pending x supercell x variants``
    summaries ever wait here for an earlier index.
    """

    def __init__(
        self, sequence: Sequence[int], writer: CampaignWriter | None
    ):
        self._sequence = list(sequence)
        self._writer = writer
        self._pos = 0
        self._buffer: dict[int, RunSummary] = {}

    def push(self, summary: RunSummary) -> None:
        if self._writer is None:
            return
        self._buffer[summary.index] = summary
        while (
            self._pos < len(self._sequence)
            and self._sequence[self._pos] in self._buffer
        ):
            self._writer.write(self._buffer.pop(self._sequence[self._pos]))
            self._pos += 1


@dataclass
class CampaignRunner:
    """Executes a campaign grid with a configurable worker count.

    Determinism guarantees: summaries are pure functions of their run
    specs, so for a fixed grid the summaries (and the JSONL run lines)
    are byte-identical across worker counts, across machines, across
    shard/merge splits, and across kill/resume cycles. Only wall-clock
    metadata (the footer's ``elapsed``) varies.

    Attributes:
        workers: 1 runs in-process; N > 1 fans out over N processes.
        max_pending: cap on simultaneously submitted tasks (bounds the
            executor's memory on very large grids).
        supercell: on the ``"crosstrace"`` backend, how many cells one
            :func:`execute_supercell` block evaluates together through
            the shared cross-trace kernels. 1 degenerates to per-cell
            execution; larger blocks amortize more but hold more traces
            in a worker's memory at once. Other backends ignore it.
        store: optional :class:`repro.store.TraceStore`. Cells consult
            it before simulating and record their traces on miss, so a
            campaign only ever simulates each ``(scenario, seed, fpr)``
            once across all runs sharing the store. The store is plain
            picklable state (a root path plus version pins): parallel
            workers each open bundles read-only via memmap, no trace
            bytes cross the process boundary.
    """

    workers: int = 1
    max_pending: int = 256
    supercell: int = 4
    store: "TraceStore | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"worker count must be at least 1, got {self.workers}"
            )
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be at least 1")
        if self.supercell < 1:
            raise ConfigurationError("supercell must be at least 1")

    def run(
        self,
        campaign: Campaign,
        progress: ProgressHook | None = None,
        *,
        out: str | Path | None = None,
        shard: tuple[int, int] | None = None,
    ) -> CampaignResult:
        """Execute a campaign grid (or one shard of it).

        Args:
            campaign: the grid to run.
            progress: called after each completed run with
                ``(done, total, summary)``.
            out: JSONL path. When given, the header is written before
                the first run and each summary is appended (flushed) as
                it completes, so a killed campaign keeps its finished
                runs; the ``completed`` footer lands only at the end.
            shard: ``(index, count)`` to execute only that
                :meth:`Campaign.shard` of the grid.

        Returns:
            The (shard-)result with all summaries, sorted by index.
        """
        specs = campaign.runs() if shard is None else campaign.shard(*shard)
        writer = (
            None
            if out is None
            else CampaignWriter.create(out, campaign, shard=shard)
        )
        return self._execute(
            campaign, specs, cached={}, writer=writer,
            shard=shard, progress=progress,
        )

    def resume(
        self,
        path: str | Path,
        progress: ProgressHook | None = None,
        *,
        partial: CampaignResult | None = None,
        retry_failed: bool = False,
    ) -> CampaignResult:
        """Finish a partial campaign JSONL file in place.

        Reloads the file, keeps every summary already present (they are
        never re-executed — determinism makes re-running them pointless),
        executes exactly the missing grid indices and streams them to
        the same file. When the existing summaries are a clean schema-2
        prefix of the expected run order (the normal kill case) the
        file is appended to; schema-1 or out-of-order partials are
        rewritten in canonical schema-2 order via an atomic
        temp-file-and-rename, so a crash mid-rewrite never destroys the
        original. Either way the finished file matches an uninterrupted
        run's, footer wall-clock aside. Resuming an already-complete
        canonical file is a no-op.

        ``WorkerError`` failures — a worker process dying, an
        environment accident rather than a property of the run — are
        *not* kept: their cells re-execute (see
        :meth:`CampaignResult.resume_cache`). Deterministic failures
        keep their summaries unless ``retry_failed`` purges them too.

        Args:
            path: a schema-1 or schema-2 campaign JSONL file.
            progress: called per newly executed run with
                ``(done, remaining_total, summary)``.
            partial: the already-loaded contents of ``path``, to skip
                re-reading the file (the CLI loads it for its banner).
            retry_failed: also re-execute deterministic ``error``
                summaries (``repro campaign --resume --retry-failed``) —
                on top of the always-on ``WorkerError`` auto-retry.
                Works on completed files too: the errored cells re-run
                and the file is rewritten canonically.

        Returns:
            The completed result (the file's summaries plus the
            freshly executed remainder).
        """
        from repro.batch.results import SCHEMA_VERSION

        if partial is None:
            partial = CampaignResult.load_jsonl(path)
        canonical = (
            partial.source_schema == SCHEMA_VERSION
            and not partial.source_torn
        )
        cached = partial.resume_cache(retry_failed=retry_failed)
        retrying = len(cached) < len(partial.summaries)
        if (
            partial.is_complete
            and canonical
            and partial.source_footer
            and not retrying
        ):
            return partial
        expected = partial.expected_runs()
        prefix = {spec.index for spec in expected[: len(cached)]}
        appendable = (
            canonical
            and not partial.source_footer
            and not retrying  # stale WorkerError lines need purging
            and prefix == set(cached)
        )
        if appendable:
            # The normal kill case: the file is a clean schema-2 prefix
            # of the expected order — continue it in place. (A complete
            # but footer-less file lands here too: zero runs execute
            # and only the footer is appended.)
            writer = CampaignWriter.append_to(path)
        else:
            # Schema-1, torn-tail, out-of-order, or otherwise
            # non-canonical partials are rewritten in schema-2 order —
            # atomically, so a crash mid-rewrite cannot destroy the
            # completed runs the original file holds.
            writer = CampaignWriter.create(
                path, partial.campaign, shard=partial.shard, atomic=True
            )
        return self._execute(
            partial.campaign,
            expected,
            cached=cached,
            writer=writer,
            shard=partial.shard,
            progress=progress,
            rewrite=not appendable,
        )

    def _execute(
        self,
        campaign: Campaign,
        specs: Sequence[RunSpec],
        cached: dict[int, RunSummary],
        writer: CampaignWriter | None,
        shard: tuple[int, int] | None,
        progress: ProgressHook | None,
        rewrite: bool = False,
    ) -> CampaignResult:
        todo = [spec for spec in specs if spec.index not in cached]
        sequence = (
            [spec.index for spec in specs]
            if rewrite
            else [spec.index for spec in todo]
        )
        sink = _OrderedSink(sequence, writer)
        started = time.perf_counter()
        try:
            if rewrite:
                for summary in cached.values():
                    sink.push(summary)
            if self.workers == 1:
                fresh = self._run_sequential(todo, progress, sink)
            else:
                fresh = self._run_parallel(todo, progress, sink)
            elapsed = time.perf_counter() - started
            if writer is not None:
                writer.finish(workers=self.workers, elapsed=elapsed)
        finally:
            if writer is not None:
                writer.close()
        return CampaignResult(
            campaign=campaign,
            summaries=list(cached.values()) + fresh,
            workers=self.workers,
            elapsed=elapsed,
            shard=shard,
        )

    def _tasks(
        self, specs: list[RunSpec]
    ) -> list[tuple[Callable, object, list[RunSpec]]]:
        """The executable units of a spec list, in run order.

        Per-cell :func:`execute_cell` calls normally; on the
        ``"crosstrace"`` backend (a campaign-level setting, so the
        first spec decides), :func:`execute_supercell` blocks of up to
        :attr:`supercell` cells. Each task carries its flat spec list
        for worker-crash failure capture.
        """
        cells = _group_cells(specs)
        run_cell = (
            execute_cell
            if self.store is None
            else partial(execute_cell, store=self.store)
        )
        if specs and specs[0].backend == "crosstrace":
            run_block = (
                execute_supercell
                if self.store is None
                else partial(execute_supercell, store=self.store)
            )
            return [
                (
                    run_block,
                    block,
                    [spec for cell in block for spec in cell],
                )
                for block in _group_supercells(cells, self.supercell)
            ]
        return [(run_cell, cell, list(cell)) for cell in cells]

    def _run_sequential(
        self,
        specs: list[RunSpec],
        progress: ProgressHook | None,
        sink: _OrderedSink,
    ) -> list[RunSummary]:
        summaries: list[RunSummary] = []
        for execute, work, _ in self._tasks(specs):
            for summary in execute(work):
                summaries.append(summary)
                sink.push(summary)
                if progress is not None:
                    progress(len(summaries), len(specs), summary)
        return summaries

    def _run_parallel(
        self,
        specs: list[RunSpec],
        progress: ProgressHook | None,
        sink: _OrderedSink,
    ) -> list[RunSummary]:
        summaries: list[RunSummary] = []
        queue = list(reversed(self._tasks(specs)))
        pending: dict = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            while queue or pending:
                while queue and len(pending) < self.max_pending:
                    execute, work, flat = queue.pop()
                    pending[pool.submit(execute, work)] = flat
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    flat = pending.pop(future)
                    for summary in self._collect(future, flat):
                        summaries.append(summary)
                        sink.push(summary)
                        if progress is not None:
                            progress(len(summaries), len(specs), summary)
        return summaries

    def _collect(self, future, specs: list[RunSpec]) -> list[RunSummary]:
        try:
            return future.result()
        except Exception:  # noqa: BLE001 - e.g. a worker killed mid-run
            error = "WorkerError: " + traceback.format_exc(limit=1).strip()
            return [_failure_summary(spec, error) for spec in specs]
