"""Campaign execution: sequential or fanned out across processes.

Each run is a pure function of its :class:`RunSpec` — the scenario
choreography is seeded by the spec's seed, the perception noise by a
fixed offset of it — so execution order and worker count cannot change
any summary. The runner exploits that: ``workers=1`` is a plain loop,
``workers>1`` submits every spec to a ``ProcessPoolExecutor`` and
reassembles the summaries in run-index order. A run that raises is
captured as a failed :class:`RunSummary` (``error`` set) instead of
aborting the campaign; a worker crash surfaces the same way.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from repro.batch.campaign import Campaign, RunSpec
from repro.batch.results import CampaignResult, RunSummary
from repro.core.evaluator import OfflineEvaluator
from repro.errors import ConfigurationError

#: Called after each completed run with (done, total, summary).
ProgressHook = Callable[[int, int, RunSummary], None]


def execute_run(spec: RunSpec) -> RunSummary:
    """Run one grid cell end to end: closed loop, then offline Zhuyi.

    Never raises — failures are folded into the summary so a single bad
    cell cannot take down a thousand-run campaign.
    """
    try:
        return _execute_run(spec)
    except Exception as exc:  # noqa: BLE001 - campaign-level failure capture
        return RunSummary(
            index=spec.index,
            scenario=spec.scenario,
            seed=spec.seed,
            fpr=spec.fpr,
            variant=spec.variant,
            collided=False,
            error=f"{type(exc).__name__}: {exc}",
        )


def _execute_run(spec: RunSpec) -> RunSummary:
    from repro.scenarios.catalog import build_scenario

    built = build_scenario(spec.scenario, seed=spec.seed)
    trace = built.run(fpr=spec.fpr)
    if trace.has_collision:
        # The paper's convention: collided runs report N/A, no estimate.
        return RunSummary(
            index=spec.index,
            scenario=spec.scenario,
            seed=spec.seed,
            fpr=spec.fpr,
            variant=spec.variant,
            collided=True,
            collision_time=trace.first_collision_time,
            duration=trace.duration,
        )
    evaluator = OfflineEvaluator(
        params=spec.resolved_params(), road=built.road, stride=spec.stride
    )
    series = evaluator.evaluate(trace)
    return RunSummary(
        index=spec.index,
        scenario=spec.scenario,
        seed=spec.seed,
        fpr=spec.fpr,
        variant=spec.variant,
        collided=False,
        max_fpr=series.max_fpr(),
        max_total_fpr=series.max_total_fpr(spec.cameras),
        fraction_of_provision=series.fraction_of_provision(
            spec.provisioned_fpr, spec.cameras
        ),
        camera_max_fpr={
            camera: series.max_fpr(camera) for camera in spec.cameras
        },
        ticks=len(series.ticks),
        duration=trace.duration,
    )


@dataclass
class CampaignRunner:
    """Executes a campaign grid with a configurable worker count.

    Attributes:
        workers: 1 runs in-process; N > 1 fans out over N processes.
        max_pending: cap on simultaneously submitted runs (bounds the
            executor's memory on very large grids).
    """

    workers: int = 1
    max_pending: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"worker count must be at least 1, got {self.workers}"
            )
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be at least 1")

    def run(
        self, campaign: Campaign, progress: ProgressHook | None = None
    ) -> CampaignResult:
        """Execute every run of the grid and collect the summaries."""
        specs = campaign.runs()
        started = time.perf_counter()
        if self.workers == 1:
            summaries = self._run_sequential(specs, progress)
        else:
            summaries = self._run_parallel(specs, progress)
        elapsed = time.perf_counter() - started
        return CampaignResult(
            campaign=campaign,
            summaries=summaries,
            workers=self.workers,
            elapsed=elapsed,
        )

    def _run_sequential(
        self, specs: list[RunSpec], progress: ProgressHook | None
    ) -> list[RunSummary]:
        summaries = []
        for spec in specs:
            summary = execute_run(spec)
            summaries.append(summary)
            if progress is not None:
                progress(len(summaries), len(specs), summary)
        return summaries

    def _run_parallel(
        self, specs: list[RunSpec], progress: ProgressHook | None
    ) -> list[RunSummary]:
        summaries: list[RunSummary] = []
        queue = list(reversed(specs))
        pending = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            while queue or pending:
                while queue and len(pending) < self.max_pending:
                    spec = queue.pop()
                    pending[pool.submit(execute_run, spec)] = spec
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = pending.pop(future)
                    summaries.append(self._collect(future, spec))
                    if progress is not None:
                        progress(len(summaries), len(specs), summaries[-1])
        return summaries

    def _collect(self, future, spec: RunSpec) -> RunSummary:
        try:
            return future.result()
        except Exception:  # noqa: BLE001 - e.g. a worker killed mid-run
            return RunSummary(
                index=spec.index,
                scenario=spec.scenario,
                seed=spec.seed,
                fpr=spec.fpr,
                variant=spec.variant,
                collided=False,
                error="WorkerError: " + traceback.format_exc(limit=1).strip(),
            )
