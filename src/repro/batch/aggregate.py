"""Aggregating a campaign back into the paper's Table 1.

The Table 1 harness (:mod:`repro.analysis.table1`) runs its own grid
inline; a campaign has already run the same grid — possibly in parallel
— so these helpers derive the identical rows purely from the stored
summaries: mean max-FPR estimates per fixed setting ("N/A" where a seed
collided), the MRF label from the collision outcomes, peak total demand
and the fraction of provision. No new simulations are launched; runs
that failed outright contribute no collision evidence and are surfaced
via :meth:`CampaignResult.failures`.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.table1 import Table1Config, Table1Row, render_table1
from repro.batch.campaign import Campaign
from repro.batch.results import CampaignResult, RunSummary
from repro.errors import ConfigurationError
from repro.scenarios.catalog import SCENARIOS
from repro.system.mrf import MRFResult


def campaign_table1(
    result: CampaignResult, variant: str | None = None
) -> list[Table1Row]:
    """One Table 1 row per campaign scenario, from stored summaries.

    Pure aggregation: no simulation is launched, so the rows are a
    deterministic function of the summaries alone — a merged shard
    result yields exactly the rows of the monolithic campaign, and a
    reloaded JSONL file yields the rows of the in-memory result it was
    saved from.

    Args:
        result: a completed (or partial) campaign result; failed runs
            contribute nothing, collided runs contribute the paper's
            "N/A" convention.
        variant: which parameter variant's runs to aggregate; defaults
            to the campaign's first variant.

    Returns:
        Rows in the campaign's scenario order.

    Raises:
        ConfigurationError: ``variant`` is not in the campaign grid.
    """
    campaign = result.campaign
    variant = _resolve_variant(campaign, variant)
    return [
        _scenario_row(scenario, result, variant)
        for scenario in campaign.scenarios
    ]


def render_campaign_table(
    result: CampaignResult, variant: str | None = None
) -> str:
    """The campaign's Table 1 as printable text.

    Args:
        result: the campaign to render.
        variant: parameter variant to aggregate (default: the first).

    Returns:
        The table as aligned plain text, one row per scenario.
    """
    campaign = result.campaign
    rows = campaign_table1(result, variant)
    config = Table1Config(
        scenarios=campaign.scenarios,
        fpr_grid=campaign.fprs,
        seeds=campaign.seeds,
        provisioned_fpr=campaign.provisioned_fpr,
        cameras=campaign.cameras,
        stride=campaign.stride,
    )
    return render_table1(rows, config)


def _resolve_variant(campaign: Campaign, variant: str | None) -> str:
    names = [v.name for v in campaign.variants]
    if variant is None:
        return names[0]
    if variant not in names:
        raise ConfigurationError(
            f"unknown variant {variant!r}; campaign has {names}"
        )
    return variant


def _scenario_row(
    scenario: str, result: CampaignResult, variant: str
) -> Table1Row:
    campaign = result.campaign
    summaries = result.for_scenario(scenario, variant=variant)

    per_fpr_estimates: dict[float, list[float]] = {
        fpr: [] for fpr in campaign.fprs
    }
    per_fpr_collided: dict[float, bool] = {fpr: False for fpr in campaign.fprs}
    collision_cache: dict[tuple[float, int], bool] = {}
    max_total = 0.0
    for summary in summaries:
        if not summary.ok:
            continue
        collision_cache[(summary.fpr, summary.seed)] = summary.collided
        if summary.collided:
            per_fpr_collided[summary.fpr] = True
            continue
        if summary.max_fpr is not None:
            per_fpr_estimates[summary.fpr].append(summary.max_fpr)
        if summary.max_total_fpr is not None:
            max_total = max(max_total, summary.max_total_fpr)

    mean_estimates: dict[float, float | None] = {}
    for fpr in campaign.fprs:
        values = per_fpr_estimates[fpr]
        if per_fpr_collided[fpr] or not values:
            mean_estimates[fpr] = None
        else:
            mean_estimates[fpr] = sum(values) / len(values)

    spec = SCENARIOS[scenario]
    provision = campaign.provisioned_fpr * len(campaign.cameras)
    return Table1Row(
        scenario=scenario,
        ego_speed_mph=spec.ego_speed_mph,
        activity=dict(spec.activity),
        paper_mrf=spec.paper_mrf,
        mrf=_mrf_from_cache(scenario, campaign, collision_cache),
        mean_estimates=mean_estimates,
        max_total_fpr=max_total,
        fraction=max_total / provision if provision else 0.0,
    )


def _mrf_from_cache(
    scenario: str,
    campaign: Campaign,
    collision_cache: Mapping[tuple[float, int], bool],
) -> MRFResult:
    """The MRF verdict from the campaign's own collision outcomes.

    Unlike :func:`repro.system.mrf.find_minimum_required_fpr` this never
    launches new runs: a rate whose runs all failed has no outcome at
    all and is excluded from the verdict entirely — it is neither safe
    nor colliding, and cannot be the MRF.
    """
    rates = sorted(set(campaign.fprs))
    evidenced_rates = []
    collision_rates = []
    safe_rates = []
    for rate in rates:
        outcomes = [
            collision_cache[(rate, seed)]
            for seed in campaign.seeds
            if (rate, seed) in collision_cache
        ]
        if not outcomes:
            continue
        evidenced_rates.append(rate)
        if any(outcomes):
            collision_rates.append(rate)
        else:
            safe_rates.append(rate)

    mrf = None
    worst = max(collision_rates) if collision_rates else None
    for rate in evidenced_rates:
        if worst is None or rate > worst:
            mrf = rate
            break
    return MRFResult(
        scenario=scenario,
        mrf=mrf,
        collision_fprs=tuple(collision_rates),
        safe_fprs=tuple(safe_rates),
        runs=0,
    )


def summarize_failures(result: CampaignResult) -> str:
    """A short plain-text report of failed runs (empty string if none)."""
    failures = result.failures()
    if not failures:
        return ""
    lines = [f"{len(failures)} failed run(s):"]
    lines.extend(
        f"  #{s.index} {s.scenario} seed={s.seed} fpr={s.fpr:g} "
        f"[{s.variant}]: {s.error}"
        for s in failures
    )
    return "\n".join(lines)
