"""Campaign results: per-run summaries, JSONL persistence, reload.

One campaign run produces one :class:`RunSummary` — the Table 1
quantities for that (scenario, seed, FPR, variant) cell: collision
outcome, max estimated FPR, ``max(F_c1 + F_c2 + F_c3)``, fraction of
provision and the per-camera maxima. Summaries are pure functions of
the run spec, so they compare byte-identical between sequential and
parallel executions; wall-clock timings live next to them in the
:class:`CampaignResult`, never inside them.

The on-disk format is JSONL: a header line (``kind: campaign``) with
the grid and schema version, then one ``kind: run`` line per summary in
run-index order. JSONL appends cheaply, streams without loading the
whole file and diffs line-by-line in code review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.batch.campaign import Campaign
from repro.errors import TraceError

#: Bumped when a line's field set changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunSummary:
    """The Table 1 quantities of one campaign run.

    Attributes:
        index: position in the campaign's deterministic run order.
        scenario / seed / fpr / variant: the grid cell.
        collided: whether the closed loop ended in a collision (the
            paper's "N/A" convention: no Zhuyi evaluation then).
        collision_time: first collision time, or ``None``.
        max_fpr: highest estimated FPR across cameras and ticks.
        max_total_fpr: peak summed demand over the analyzed cameras.
        fraction_of_provision: peak demand over the provision.
        camera_max_fpr: per-camera maximum estimated FPR.
        ticks: evaluation ticks produced.
        duration: simulated seconds covered by the trace.
        error: captured failure ("ErrorType: message"), or ``None``.
    """

    index: int
    scenario: str
    seed: int
    fpr: float
    variant: str
    collided: bool
    collision_time: float | None = None
    max_fpr: float | None = None
    max_total_fpr: float | None = None
    fraction_of_provision: float | None = None
    camera_max_fpr: Mapping[str, float] = field(default_factory=dict)
    ticks: int = 0
    duration: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the run completed without a captured failure."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-ready representation (field order fixed for diffing)."""
        return {
            "index": self.index,
            "scenario": self.scenario,
            "seed": self.seed,
            "fpr": self.fpr,
            "variant": self.variant,
            "collided": self.collided,
            "collision_time": self.collision_time,
            "max_fpr": self.max_fpr,
            "max_total_fpr": self.max_total_fpr,
            "fraction_of_provision": self.fraction_of_provision,
            "camera_max_fpr": dict(self.camera_max_fpr),
            "ticks": self.ticks,
            "duration": self.duration,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                index=int(data["index"]),
                scenario=data["scenario"],
                seed=int(data["seed"]),
                fpr=float(data["fpr"]),
                variant=data["variant"],
                collided=bool(data["collided"]),
                collision_time=data.get("collision_time"),
                max_fpr=data.get("max_fpr"),
                max_total_fpr=data.get("max_total_fpr"),
                fraction_of_provision=data.get("fraction_of_provision"),
                camera_max_fpr=dict(data.get("camera_max_fpr", {})),
                ticks=int(data.get("ticks", 0)),
                duration=float(data.get("duration", 0.0)),
                error=data.get("error"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed run summary: {exc}") from exc


class CampaignResult:
    """All summaries of one campaign, plus execution metadata."""

    def __init__(
        self,
        campaign: Campaign,
        summaries: Sequence[RunSummary],
        workers: int = 1,
        elapsed: float = 0.0,
    ):
        self.campaign = campaign
        self.summaries = sorted(summaries, key=lambda s: s.index)
        self.workers = workers
        self.elapsed = elapsed

    def __len__(self) -> int:
        return len(self.summaries)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def failures(self) -> list[RunSummary]:
        """Runs whose execution raised (not collisions — real failures)."""
        return [summary for summary in self.summaries if not summary.ok]

    def collisions(self) -> list[RunSummary]:
        """Runs that ended in a collision."""
        return [summary for summary in self.summaries if summary.collided]

    def for_scenario(
        self, scenario: str, variant: str | None = None
    ) -> list[RunSummary]:
        """Summaries of one scenario (optionally one variant)."""
        return [
            summary
            for summary in self.summaries
            if summary.scenario == scenario
            and (variant is None or summary.variant == variant)
        ]

    def scenario_max_fpr(self, scenario: str) -> float | None:
        """Highest estimated FPR across a scenario's collision-free runs."""
        values = [
            summary.max_fpr
            for summary in self.for_scenario(scenario)
            if summary.ok and not summary.collided and summary.max_fpr is not None
        ]
        return max(values) if values else None

    def scenario_max_fraction(self, scenario: str) -> float | None:
        """Worst fraction-of-provision across a scenario's clean runs."""
        values = [
            summary.fraction_of_provision
            for summary in self.for_scenario(scenario)
            if summary.ok
            and not summary.collided
            and summary.fraction_of_provision is not None
        ]
        return max(values) if values else None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write the header line plus one line per run summary."""
        lines = [
            json.dumps(
                {
                    "kind": "campaign",
                    "schema": SCHEMA_VERSION,
                    "workers": self.workers,
                    "elapsed": self.elapsed,
                    "grid": self.campaign.to_dict(),
                }
            )
        ]
        lines.extend(
            json.dumps({"kind": "run", **summary.to_dict()})
            for summary in self.summaries
        )
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "CampaignResult":
        """Reload a campaign written by :meth:`save_jsonl`."""
        raw_lines = [
            line
            for line in Path(path).read_text().splitlines()
            if line.strip()
        ]
        if not raw_lines:
            raise TraceError(f"empty campaign file: {path}")
        try:
            records = [json.loads(line) for line in raw_lines]
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid campaign JSONL in {path}: {exc}") from exc
        header = records[0]
        if header.get("kind") != "campaign":
            raise TraceError(
                f"campaign file {path} does not start with a campaign header"
            )
        if header.get("schema") != SCHEMA_VERSION:
            raise TraceError(
                f"campaign schema {header.get('schema')!r} unsupported "
                f"(expected {SCHEMA_VERSION})"
            )
        campaign = Campaign.from_dict(header["grid"])
        summaries = [
            RunSummary.from_dict(record)
            for record in records[1:]
            if record.get("kind") == "run"
        ]
        return cls(
            campaign=campaign,
            summaries=summaries,
            workers=int(header.get("workers", 1)),
            elapsed=float(header.get("elapsed", 0.0)),
        )
