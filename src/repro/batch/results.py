"""Campaign results: per-run summaries, JSONL persistence, reload.

One campaign run produces one :class:`RunSummary` — the Table 1
quantities for that (scenario, seed, FPR, variant) cell: collision
outcome, max estimated FPR, ``max(F_c1 + F_c2 + F_c3)``, fraction of
provision and the per-camera maxima. Summaries are pure functions of
the run spec, so they compare byte-identical between sequential and
parallel executions; wall-clock timings live next to them in the
:class:`CampaignResult`, never inside them.

The on-disk format is JSONL (schema 2): a header line (``kind:
campaign``) with the grid, schema version and optional shard tag, then
one ``kind: run`` line per summary in run-index order — appended by
:class:`CampaignWriter` *as each run finishes*, so a killed campaign
keeps everything it completed — and a ``kind: completed`` footer with
the execution metadata, written only when the whole grid ran. A file
without the footer is a resumable partial; ``repro campaign --resume``
executes exactly the missing indices. Schema 1 files (header carries
``workers``/``elapsed``, no footer) still load. See docs/CAMPAIGNS.md
for the field-by-field schema comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Mapping, Sequence

from repro import ioutil
from repro.batch.campaign import Campaign, RunSpec
from repro.errors import ConfigurationError, TraceError

#: Bumped when a line's field set changes incompatibly.
#: 1: single header line carrying workers/elapsed, runs written at end.
#: 2: bare header, streamed run lines, ``completed`` footer, shard tag.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunSummary:
    """The Table 1 quantities of one campaign run.

    Attributes:
        index: position in the campaign's deterministic run order.
        scenario / seed / fpr / variant: the grid cell.
        collided: whether the closed loop ended in a collision (the
            paper's "N/A" convention: no Zhuyi evaluation then).
        collision_time: first collision time, or ``None``.
        max_fpr: highest estimated FPR across cameras and ticks.
        max_total_fpr: peak summed demand over the analyzed cameras.
        fraction_of_provision: peak demand over the provision.
        camera_max_fpr: per-camera maximum estimated FPR.
        ticks: evaluation ticks produced.
        duration: simulated seconds covered by the trace.
        error: captured failure ("ErrorType: message"), or ``None``.
    """

    index: int
    scenario: str
    seed: int
    fpr: float
    variant: str
    collided: bool
    collision_time: float | None = None
    max_fpr: float | None = None
    max_total_fpr: float | None = None
    fraction_of_provision: float | None = None
    camera_max_fpr: Mapping[str, float] = field(default_factory=dict)
    ticks: int = 0
    duration: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the run completed without a captured failure."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-ready representation (field order fixed for diffing)."""
        return {
            "index": self.index,
            "scenario": self.scenario,
            "seed": self.seed,
            "fpr": self.fpr,
            "variant": self.variant,
            "collided": self.collided,
            "collision_time": self.collision_time,
            "max_fpr": self.max_fpr,
            "max_total_fpr": self.max_total_fpr,
            "fraction_of_provision": self.fraction_of_provision,
            "camera_max_fpr": dict(self.camera_max_fpr),
            "ticks": self.ticks,
            "duration": self.duration,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                index=int(data["index"]),
                scenario=data["scenario"],
                seed=int(data["seed"]),
                fpr=float(data["fpr"]),
                variant=data["variant"],
                collided=bool(data["collided"]),
                collision_time=data.get("collision_time"),
                max_fpr=data.get("max_fpr"),
                max_total_fpr=data.get("max_total_fpr"),
                fraction_of_provision=data.get("fraction_of_provision"),
                camera_max_fpr=dict(data.get("camera_max_fpr", {})),
                ticks=int(data.get("ticks", 0)),
                duration=float(data.get("duration", 0.0)),
                error=data.get("error"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed run summary: {exc}") from exc


class CampaignResult:
    """All summaries of one campaign (or one shard of it).

    Attributes:
        campaign: the grid the summaries belong to.
        summaries: per-run summaries, sorted by grid index.
        workers: worker count the runs executed with (1 when unknown,
            e.g. a partial file with no footer yet).
        elapsed: wall-clock seconds (0.0 when unknown).
        shard: ``(index, count)`` when this result holds one
            :meth:`Campaign.shard` of the grid, else ``None``.
    """

    def __init__(
        self,
        campaign: Campaign,
        summaries: Sequence[RunSummary],
        workers: int = 1,
        elapsed: float = 0.0,
        shard: tuple[int, int] | None = None,
    ):
        self.campaign = campaign
        self.summaries = sorted(summaries, key=lambda s: s.index)
        self.workers = workers
        self.elapsed = elapsed
        self.shard = shard
        #: Set by :meth:`load_jsonl`: the file's schema version,
        #: whether it carried a ``completed`` footer, and whether its
        #: tail was torn (no trailing newline / dropped final line).
        #: ``None`` for results that never touched disk. Resume uses
        #: these to pick between appending in place and an atomic
        #: canonical rewrite.
        self.source_schema: int | None = None
        self.source_footer: bool | None = None
        self.source_torn: bool | None = None

    def __len__(self) -> int:
        return len(self.summaries)

    # ------------------------------------------------------------------
    # coverage
    # ------------------------------------------------------------------

    def expected_runs(self) -> list[RunSpec]:
        """The runs this result is supposed to cover.

        The full grid normally; the shard's slice when :attr:`shard`
        is set. Determinism guarantee: this is a pure function of the
        campaign spec, so a reloaded partial file computes exactly the
        remainder an uninterrupted run would have executed.
        """
        if self.shard is None:
            return self.campaign.runs()
        return self.campaign.shard(*self.shard)

    def run_indices(self) -> set[int]:
        """Grid indices with a recorded summary."""
        return {summary.index for summary in self.summaries}

    def missing_runs(self) -> list[RunSpec]:
        """Expected runs with no summary yet (ascending grid index)."""
        present = self.run_indices()
        return [
            spec for spec in self.expected_runs() if spec.index not in present
        ]

    @property
    def is_complete(self) -> bool:
        """True when every expected run has a summary."""
        return not self.missing_runs()

    def resume_cache(self, retry_failed: bool = False) -> dict[int, RunSummary]:
        """The summaries a resume may reuse, keyed by grid index.

        Everything except ``WorkerError`` failures: those record a
        worker process dying (OOM kill, crash), an environment accident
        rather than a function of the run spec, so resume re-executes
        them. Deterministic failures (the run itself raising) keep
        their summaries — re-running them would reproduce the error —
        unless ``retry_failed`` forces them back into the queue (the
        escape hatch for failures that were environmental after all, or
        that a code fix has since cured).
        """
        return {
            summary.index: summary
            for summary in self.summaries
            if summary.ok
            or (
                not retry_failed
                and not (summary.error or "").startswith("WorkerError")
            )
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def failures(self) -> list[RunSummary]:
        """Runs whose execution raised (not collisions — real failures)."""
        return [summary for summary in self.summaries if not summary.ok]

    def collisions(self) -> list[RunSummary]:
        """Runs that ended in a collision."""
        return [summary for summary in self.summaries if summary.collided]

    def for_scenario(
        self, scenario: str, variant: str | None = None
    ) -> list[RunSummary]:
        """Summaries of one scenario (optionally one variant)."""
        return [
            summary
            for summary in self.summaries
            if summary.scenario == scenario
            and (variant is None or summary.variant == variant)
        ]

    def scenario_max_fpr(self, scenario: str) -> float | None:
        """Highest estimated FPR across a scenario's collision-free runs."""
        values = [
            summary.max_fpr
            for summary in self.for_scenario(scenario)
            if summary.ok and not summary.collided and summary.max_fpr is not None
        ]
        return max(values) if values else None

    def scenario_max_fraction(self, scenario: str) -> float | None:
        """Worst fraction-of-provision across a scenario's clean runs."""
        values = [
            summary.fraction_of_provision
            for summary in self.for_scenario(scenario)
            if summary.ok
            and not summary.collided
            and summary.fraction_of_provision is not None
        ]
        return max(values) if values else None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write the result as one schema-2 JSONL file.

        Header, then every summary in grid-index order, then — only
        when the result covers its whole expected grid — the
        ``completed`` footer. Writing an incomplete result therefore
        produces a file that ``--resume`` recognizes as partial.
        """
        with CampaignWriter.create(path, self.campaign, shard=self.shard) as w:
            for summary in self.summaries:
                w.write(summary)
            if self.is_complete:
                w.finish(workers=self.workers, elapsed=self.elapsed)

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "CampaignResult":
        """Reload a campaign JSONL file (schema 1 or 2).

        A schema-2 file with no ``completed`` footer — a campaign that
        was killed mid-flight — loads fine: the summaries present are
        kept and :meth:`missing_runs` names the remainder. Execution
        metadata defaults to ``workers=1, elapsed=0.0`` until the
        footer exists. A torn *final* line (a kill landed mid-write,
        leaving no trailing newline) is dropped — that run simply
        counts as missing; malformed JSON anywhere else, including a
        newline-terminated final line, is still an error.

        Raises:
            TraceError: empty file, malformed JSON before the final
                line, missing header, or an unsupported schema version.
        """
        text = Path(path).read_text()
        # Every record is written as one "line\n" write, so a clean
        # file always ends in a newline; its absence marks a tail torn
        # by a kill mid-write (resume then rewrites instead of
        # appending onto the damaged line).
        torn = bool(text) and not text.endswith("\n")
        raw_lines = [line for line in text.splitlines() if line.strip()]
        if not raw_lines:
            raise TraceError(f"empty campaign file: {path}")
        records = []
        for number, line in enumerate(raw_lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                # Only a final line missing its newline is a torn kill
                # tail; a malformed but newline-terminated line (the
                # writer emits line+newline in one write) is corruption
                # and stays fatal.
                if torn and number == len(raw_lines) - 1 and number > 0:
                    break
                raise TraceError(
                    f"invalid campaign JSONL in {path}: {exc}"
                ) from exc
        header = records[0]
        if header.get("kind") != "campaign":
            raise TraceError(
                f"campaign file {path} does not start with a campaign header"
            )
        schema = header.get("schema")
        if schema not in (1, SCHEMA_VERSION):
            raise TraceError(
                f"campaign schema {schema!r} unsupported "
                f"(expected 1 or {SCHEMA_VERSION})"
            )
        campaign = Campaign.from_dict(header["grid"])
        summaries = [
            RunSummary.from_dict(record)
            for record in records[1:]
            if record.get("kind") == "run"
        ]
        shard = None
        if header.get("shard") is not None:
            shard = (
                int(header["shard"]["index"]),
                int(header["shard"]["count"]),
            )
        workers = int(header.get("workers", 1))
        elapsed = float(header.get("elapsed", 0.0))
        footers = [r for r in records[1:] if r.get("kind") == "completed"]
        if footers:
            workers = int(footers[-1].get("workers", workers))
            elapsed = float(footers[-1].get("elapsed", elapsed))
        result = cls(
            campaign=campaign,
            summaries=summaries,
            workers=workers,
            elapsed=elapsed,
            shard=shard,
        )
        result.source_schema = schema
        result.source_footer = bool(footers)
        result.source_torn = torn
        return result

    # ------------------------------------------------------------------
    # shard recombination
    # ------------------------------------------------------------------

    @classmethod
    def merge(cls, parts: Sequence["CampaignResult"]) -> "CampaignResult":
        """Recombine shard results into one monolithic result.

        Because a shard keeps each run's full-grid index, merging is a
        pure reindex-free union: the merged result aggregates (Table 1
        rows, MRF verdicts) exactly as if the whole grid had run on one
        machine.

        Args:
            parts: shard results of the *same* campaign grid. Order
                does not matter.

        Returns:
            One result over the union of the parts' summaries, with
            ``elapsed`` summed (total compute) and ``workers`` the
            maximum across parts; ``shard`` is cleared.

        Raises:
            ConfigurationError: no parts, grid mismatch between parts,
                overlapping run indices, or an index outside the grid.
        """
        if not parts:
            raise ConfigurationError("nothing to merge: no campaign parts")
        campaign = parts[0].campaign
        for part in parts[1:]:
            if part.campaign != campaign:
                raise ConfigurationError(
                    "cannot merge campaign parts with different grids"
                )
        seen: dict[int, RunSummary] = {}
        for part in parts:
            for summary in part.summaries:
                if summary.index in seen:
                    raise ConfigurationError(
                        f"overlapping run index {summary.index} "
                        f"({summary.scenario} seed={summary.seed} "
                        f"fpr={summary.fpr:g} [{summary.variant}]) "
                        "across merged parts"
                    )
                if not 0 <= summary.index < campaign.size:
                    raise ConfigurationError(
                        f"run index {summary.index} outside the "
                        f"{campaign.size}-run grid"
                    )
                seen[summary.index] = summary
        return cls(
            campaign=campaign,
            summaries=list(seen.values()),
            workers=max(part.workers for part in parts),
            elapsed=sum(part.elapsed for part in parts),
            shard=None,
        )


class CampaignWriter:
    """Streams a campaign result to JSONL as runs complete.

    The write protocol is what makes campaigns kill-safe: the header
    goes out before the first run, every summary line is flushed the
    moment it is written, and the ``completed`` footer exists only
    after :meth:`finish` — so a file without a footer is by definition
    a resumable partial, and a crash can lose at most the line being
    written. Use as a context manager; an exception inside the block
    closes the file *without* the footer.
    """

    def __init__(
        self,
        path: str | Path,
        handle: IO[str],
        target: Path | None = None,
    ):
        self._path = Path(path)
        self._target = self._path if target is None else target
        self._handle = handle
        self._finished = False

    @classmethod
    def create(
        cls,
        path: str | Path,
        campaign: Campaign,
        shard: tuple[int, int] | None = None,
        atomic: bool = False,
    ) -> "CampaignWriter":
        """Start a fresh file: truncate and write the schema-2 header.

        ``atomic=True`` stages the output in ``<path>.tmp`` and renames
        it over ``path`` only after :meth:`finish` — so rewriting an
        existing partial (resume's canonical-rewrite path) can never
        destroy it: a crash mid-rewrite leaves the original untouched
        and discards the temp file on close. Without ``atomic``, the
        file is published via :func:`repro.ioutil.atomic_create_stream`
        with the header already on the device, so kill-during-create
        can never leave a torn header under the final name.
        """
        header: dict = {
            "kind": "campaign",
            "schema": SCHEMA_VERSION,
            "grid": campaign.to_dict(),
        }
        if shard is not None:
            header["shard"] = {"index": shard[0], "count": shard[1]}
        return cls._open_fresh(Path(path), header, atomic)

    @classmethod
    def create_raw(
        cls,
        path: str | Path,
        header: Mapping,
        atomic: bool = False,
    ) -> "CampaignWriter":
        """Start a fresh file with a caller-supplied header line.

        The generic face of :meth:`create`, for streams that follow the
        same write protocol — header first, flushed record lines,
        fsynced ``completed`` footer — but are not campaign summaries
        (``repro replay`` uses it for its re-estimation rows).
        ``atomic`` stages and renames exactly as in :meth:`create`.
        """
        return cls._open_fresh(Path(path), dict(header), atomic)

    @classmethod
    def _open_fresh(
        cls, final: Path, header: dict, atomic: bool
    ) -> "CampaignWriter":
        """Shared creation path: a fresh stream whose header cannot tear.

        Non-atomic streams go through
        :func:`repro.ioutil.atomic_create_stream`: the header line is
        fsynced and renamed into place before the append handle opens,
        so a file visible at ``final`` always has a complete header.
        Atomic streams accumulate in ``<final>.tmp`` instead and only
        replace ``final`` at :meth:`close` after :meth:`finish` — the
        temp file is discarded on any other exit, so its bare open can
        never publish torn content under the final name.
        """
        if atomic:
            target = final.with_name(final.name + ".tmp")
            handle = target.open("w")  # reprolint: disable=IO005 -- staged .tmp: committed by rename only after the finish-time fsync; a torn temp is discarded at close, never published
            writer = cls(final, handle, target=target)
            writer._emit(header)
            return writer
        handle = ioutil.atomic_create_stream(
            final, json.dumps(header) + "\n"
        )
        return cls(final, handle)

    @classmethod
    def append_to(cls, path: str | Path) -> "CampaignWriter":
        """Continue a partial file (header already present) in place."""
        return cls(path, Path(path).open("a"))

    def write(self, summary: RunSummary) -> None:
        """Append one run line and flush it to disk."""
        self._emit({"kind": "run", **summary.to_dict()})

    def write_row(self, record: Mapping) -> None:
        """Append one caller-shaped record line and flush it to disk."""
        self._emit(dict(record))

    def finish(self, workers: int, elapsed: float) -> None:
        """Append the ``completed`` footer — the campaign ran fully.

        The footer is also the durability point: per-line flushes hand
        runs to the OS (kill-safe), but only the fsync here forces the
        finished file to the device, so a completed campaign survives
        power loss — not just a process kill.
        """
        self._emit(
            {
                "kind": "completed",
                "workers": workers,
                "elapsed": elapsed,
            }
        )
        os.fsync(self._handle.fileno())
        self._finished = True

    def close(self) -> None:
        """Close the file; atomic writers commit or roll back here."""
        if not self._handle.closed:
            self._handle.close()
        if self._target != self._path:
            if self._finished:
                # The temp file's contents are already on the device
                # (finish fsyncs before setting _finished); making the
                # rename itself durable needs the directory entry
                # synced too.
                os.replace(self._target, self._path)
                ioutil.fsync_dir(self._path.parent)
            else:
                self._target.unlink(missing_ok=True)

    def _emit(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def __enter__(self) -> "CampaignWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
