"""Batch evaluation campaigns: scenario x seed x FPR sweeps at scale.

The paper's statistical claims rest on sweeping many scenarios, jitter
seeds and fixed FPR settings; this package turns that from a hand-written
loop into a first-class subsystem:

* :mod:`repro.batch.campaign` — the grid spec and its deterministic
  expansion into per-run specs.
* :mod:`repro.batch.runner` — sequential or process-parallel execution
  with per-run failure capture.
* :mod:`repro.batch.results` — per-run summaries, JSONL persistence
  and reload.
* :mod:`repro.batch.aggregate` — Table 1 rows straight from a stored
  campaign, no re-simulation.

Quickstart::

    from repro.batch import Campaign, CampaignRunner, render_campaign_table

    campaign = Campaign(scenarios=("cut_out", "cut_in"), seeds=(0, 1))
    result = CampaignRunner(workers=4).run(campaign)
    result.save_jsonl("campaign.jsonl")
    print(render_campaign_table(result))
"""

from repro.batch.campaign import (
    DEFAULT_VARIANT,
    Campaign,
    ParamVariant,
    RunSpec,
    full_catalog_campaign,
)
from repro.batch.runner import CampaignRunner, execute_run
from repro.batch.results import SCHEMA_VERSION, CampaignResult, RunSummary
from repro.batch.aggregate import (
    campaign_table1,
    render_campaign_table,
    summarize_failures,
)

__all__ = [
    "Campaign",
    "ParamVariant",
    "RunSpec",
    "DEFAULT_VARIANT",
    "full_catalog_campaign",
    "CampaignRunner",
    "execute_run",
    "CampaignResult",
    "RunSummary",
    "SCHEMA_VERSION",
    "campaign_table1",
    "render_campaign_table",
    "summarize_failures",
]
