"""Batch evaluation campaigns: scenario x seed x FPR sweeps at scale.

The paper's statistical claims rest on sweeping many scenarios, jitter
seeds and fixed FPR settings; this package turns that from a hand-written
loop into a first-class subsystem:

* :mod:`repro.batch.campaign` — the grid spec, its deterministic
  expansion into per-run specs, and cell-stable sharding.
* :mod:`repro.batch.runner` — sequential or process-parallel execution
  with per-run failure capture, cross-variant trace caching, streaming
  JSONL output and resume.
* :mod:`repro.batch.results` — per-run summaries, streaming JSONL
  persistence (schema 2), reload and shard merging.
* :mod:`repro.batch.aggregate` — Table 1 rows straight from a stored
  campaign, no re-simulation.

Quickstart::

    from repro.batch import Campaign, CampaignRunner, render_campaign_table

    campaign = Campaign(scenarios=("cut_out", "cut_in"), seeds=(0, 1))
    runner = CampaignRunner(workers=4)
    result = runner.run(campaign, out="campaign.jsonl")  # streamed
    # ... kill it mid-flight, then later:
    result = runner.resume("campaign.jsonl")             # runs the rest
    print(render_campaign_table(result))

See docs/CAMPAIGNS.md for the JSONL schema and the resume / shard /
merge workflows, and docs/ARCHITECTURE.md for where this package sits
in the pipeline.
"""

from repro.batch.campaign import (
    DEFAULT_VARIANT,
    Campaign,
    ParamVariant,
    RunSpec,
    full_catalog_campaign,
)
from repro.batch.runner import (
    CampaignRunner,
    execute_cell,
    execute_run,
    execute_supercell,
)
from repro.batch.results import (
    SCHEMA_VERSION,
    CampaignResult,
    CampaignWriter,
    RunSummary,
)
from repro.batch.aggregate import (
    campaign_table1,
    render_campaign_table,
    summarize_failures,
)

__all__ = [
    "Campaign",
    "ParamVariant",
    "RunSpec",
    "DEFAULT_VARIANT",
    "full_catalog_campaign",
    "CampaignRunner",
    "execute_cell",
    "execute_run",
    "execute_supercell",
    "CampaignResult",
    "CampaignWriter",
    "RunSummary",
    "SCHEMA_VERSION",
    "campaign_table1",
    "render_campaign_table",
    "summarize_failures",
]
