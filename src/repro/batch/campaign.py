"""Campaign specs: the grid a batch evaluation sweeps.

The paper's Table 1 / Figures 4-8 story is a *campaign* — many scenarios
x jitter seeds x fixed FPR settings (and optionally Zhuyi parameter
variants), each run end to end through the closed loop and the offline
evaluator. A :class:`Campaign` declares that grid once; expansion into
:class:`RunSpec` entries is deterministic, so a parallel executor and a
sequential loop visit the exact same runs in the exact same order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.perception.sensor import ANALYZED_CAMERAS

#: Variant name used when a campaign sweeps no parameter overrides.
DEFAULT_VARIANT = "default"


@dataclass(frozen=True)
class ParamVariant:
    """A named :class:`ZhuyiParams` override swept by a campaign.

    ``params = None`` means the model defaults (the common case); the
    name still tags every run so result files stay self-describing.
    """

    name: str
    params: ZhuyiParams | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a parameter variant needs a name")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined run of a campaign grid.

    Everything a worker process needs travels in this (picklable)
    record; the run outcome is a pure function of it, which is what
    makes parallel and sequential campaigns byte-identical.
    """

    index: int
    scenario: str
    seed: int
    fpr: float
    variant: str
    params: ZhuyiParams | None
    stride: float
    provisioned_fpr: float
    cameras: tuple[str, ...]

    def resolved_params(self) -> ZhuyiParams:
        """The Zhuyi constants for this run."""
        return self.params if self.params is not None else ZhuyiParams()


@dataclass(frozen=True)
class Campaign:
    """A scenario x seed x FPR (x parameter-variant) evaluation grid.

    Attributes:
        scenarios: catalog names (validated against the registry,
            including any ``speed_sweep`` expansions already applied).
        seeds: jitter seeds; each seed is one choreography.
        fprs: fixed perception rates the closed loop runs at.
        variants: named Zhuyi parameter overrides (default: just the
            paper constants).
        stride: offline evaluation stride (seconds).
        provisioned_fpr: per-camera provision for the fraction column.
        cameras: cameras entering the total-demand summaries.
    """

    scenarios: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    fprs: tuple[float, ...] = (30.0,)
    variants: tuple[ParamVariant, ...] = (ParamVariant(DEFAULT_VARIANT),)
    stride: float = 0.05
    provisioned_fpr: float = 30.0
    cameras: tuple[str, ...] = ANALYZED_CAMERAS

    def __post_init__(self) -> None:
        from repro.scenarios.catalog import SCENARIOS, ensure_scenario

        if not self.scenarios:
            raise ConfigurationError("a campaign needs at least one scenario")
        if not self.seeds or not self.fprs or not self.variants:
            raise ConfigurationError(
                "campaign seeds, fprs and variants must be non-empty"
            )
        for name in self.scenarios:
            # ensure_scenario re-derives speed-sweep variants on demand,
            # so a campaign reloaded from JSONL (or validated in a fresh
            # process) accepts the names its header references.
            if not ensure_scenario(name):
                raise ConfigurationError(
                    f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
                )
        for label, values in (
            ("scenario", self.scenarios),
            ("seed", self.seeds),
            ("fpr", self.fprs),
            ("variant name", [variant.name for variant in self.variants]),
        ):
            if len(set(values)) != len(values):
                raise ConfigurationError(
                    f"duplicate {label} entries in campaign grid: {list(values)}"
                )
        if self.stride <= 0.0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if self.provisioned_fpr <= 0.0:
            raise ConfigurationError("provisioned FPR must be positive")

    @property
    def size(self) -> int:
        """Total number of runs in the grid."""
        return (
            len(self.scenarios)
            * len(self.seeds)
            * len(self.fprs)
            * len(self.variants)
        )

    def runs(self) -> list[RunSpec]:
        """The grid expanded in deterministic (scenario, seed, fpr,
        variant) order, each run stamped with its index."""
        specs: list[RunSpec] = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                for fpr in self.fprs:
                    for variant in self.variants:
                        specs.append(
                            RunSpec(
                                index=len(specs),
                                scenario=scenario,
                                seed=int(seed),
                                fpr=float(fpr),
                                variant=variant.name,
                                params=variant.params,
                                stride=self.stride,
                                provisioned_fpr=self.provisioned_fpr,
                                cameras=tuple(self.cameras),
                            )
                        )
        return specs

    def to_dict(self) -> dict:
        """JSON-ready grid description (the JSONL header payload)."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "fprs": list(self.fprs),
            "variants": [
                {
                    "name": variant.name,
                    "params": (
                        None
                        if variant.params is None
                        else asdict(variant.params)
                    ),
                }
                for variant in self.variants
            ],
            "stride": self.stride,
            "provisioned_fpr": self.provisioned_fpr,
            "cameras": list(self.cameras),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scenarios=tuple(data["scenarios"]),
            seeds=tuple(int(seed) for seed in data["seeds"]),
            fprs=tuple(float(fpr) for fpr in data["fprs"]),
            variants=tuple(
                ParamVariant(
                    name=raw["name"],
                    params=(
                        None
                        if raw.get("params") is None
                        else ZhuyiParams(**raw["params"])
                    ),
                )
                for raw in data["variants"]
            ),
            stride=float(data["stride"]),
            provisioned_fpr=float(data["provisioned_fpr"]),
            cameras=tuple(data["cameras"]),
        )


def full_catalog_campaign(
    seeds: Sequence[int] = (0,),
    fprs: Sequence[float] = (30.0,),
    stride: float = 0.05,
) -> Campaign:
    """A campaign over every registered scenario (incl. expansions)."""
    from repro.scenarios.catalog import SCENARIOS

    return Campaign(
        scenarios=tuple(SCENARIOS),
        seeds=tuple(seeds),
        fprs=tuple(fprs),
        stride=stride,
    )
