"""Campaign specs: the grid a batch evaluation sweeps.

The paper's Table 1 / Figures 4-8 story is a *campaign* — many scenarios
x jitter seeds x fixed FPR settings (and optionally Zhuyi parameter
variants), each run end to end through the closed loop and the offline
evaluator. A :class:`Campaign` declares that grid once; expansion into
:class:`RunSpec` entries is deterministic, so a parallel executor and a
sequential loop visit the exact same runs in the exact same order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core.latency import BACKENDS
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.perception.noise import PerceptionNoise
from repro.perception.sensor import ANALYZED_CAMERAS

#: Variant name used when a campaign sweeps no parameter overrides.
DEFAULT_VARIANT = "default"


@dataclass(frozen=True)
class ParamVariant:
    """A named :class:`ZhuyiParams` override swept by a campaign.

    ``params = None`` means the model defaults (the common case); the
    name still tags every run so result files stay self-describing.
    """

    name: str
    params: ZhuyiParams | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a parameter variant needs a name")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined run of a campaign grid.

    Everything a worker process needs travels in this (picklable)
    record; the run outcome is a pure function of it, which is what
    makes parallel and sequential campaigns byte-identical.
    """

    index: int
    scenario: str
    seed: int
    fpr: float
    variant: str
    params: ZhuyiParams | None
    stride: float
    provisioned_fpr: float
    cameras: tuple[str, ...]
    backend: str = "batched"
    #: The cell's evaluation-time perception noise, already re-seeded
    #: for this (scenario, seed, fpr) cell via
    #: :meth:`PerceptionNoise.for_cell` — a pure function of the cell
    #: coordinates, never of the run index or shard layout.
    noise: PerceptionNoise | None = None

    def resolved_params(self) -> ZhuyiParams:
        """The Zhuyi constants for this run."""
        return self.params if self.params is not None else ZhuyiParams()


@dataclass(frozen=True)
class Campaign:
    """A scenario x seed x FPR (x parameter-variant) evaluation grid.

    Determinism guarantees: :meth:`runs` expands the grid in a fixed
    order (scenario-major, then seed, fpr, variant) and stamps each run
    with its index, so two processes given equal campaigns — including
    one reconstructed from a JSONL header via :meth:`from_dict` — agree
    on every run's identity. :meth:`shard` partitions that same
    expansion, which is what makes shard files mergeable.

    Attributes:
        scenarios: catalog names (validated against the registry,
            including any ``speed_sweep`` expansions already applied).
        seeds: jitter seeds; each seed is one choreography.
        fprs: fixed perception rates the closed loop runs at.
        variants: named Zhuyi parameter overrides (default: just the
            paper constants).
        stride: offline evaluation stride (seconds).
        provisioned_fpr: per-camera provision for the fraction column.
        cameras: cameras entering the total-demand summaries.
        backend: latency-solver backend every run evaluates with:
            the ``"batched"`` array kernel, the ``"scalar"`` reference
            loop, or ``"crosstrace"`` — the batched kernels lifted
            across whole blocks of cells, solved together per worker
            via :func:`repro.batch.runner.execute_supercell`.
            Summaries are byte-identical across all three.
        noise: optional evaluation-time stochastic perception
            (:class:`~repro.perception.noise.PerceptionNoise`). Each
            (scenario, seed, fpr) cell evaluates under a child seed
            derived from the root seed and the cell coordinates
            (:meth:`PerceptionNoise.for_cell`), so cells decorrelate
            while summaries stay byte-identical across backends,
            shard partitions, worker counts and kill/resume cycles.
    """

    scenarios: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    fprs: tuple[float, ...] = (30.0,)
    variants: tuple[ParamVariant, ...] = (ParamVariant(DEFAULT_VARIANT),)
    stride: float = 0.05
    provisioned_fpr: float = 30.0
    cameras: tuple[str, ...] = ANALYZED_CAMERAS
    backend: str = "batched"
    noise: PerceptionNoise | None = None

    def __post_init__(self) -> None:
        from repro.scenarios.catalog import SCENARIOS, ensure_scenario

        if not self.scenarios:
            raise ConfigurationError("a campaign needs at least one scenario")
        if not self.seeds or not self.fprs or not self.variants:
            raise ConfigurationError(
                "campaign seeds, fprs and variants must be non-empty"
            )
        for name in self.scenarios:
            # ensure_scenario re-derives speed-sweep variants on demand,
            # so a campaign reloaded from JSONL (or validated in a fresh
            # process) accepts the names its header references.
            if not ensure_scenario(name):
                raise ConfigurationError(
                    f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
                )
        for label, values in (
            ("scenario", self.scenarios),
            ("seed", self.seeds),
            ("fpr", self.fprs),
            ("variant name", [variant.name for variant in self.variants]),
        ):
            if len(set(values)) != len(values):
                raise ConfigurationError(
                    f"duplicate {label} entries in campaign grid: {list(values)}"
                )
        if self.stride <= 0.0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if self.provisioned_fpr <= 0.0:
            raise ConfigurationError("provisioned FPR must be positive")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )

    @property
    def size(self) -> int:
        """Total number of runs in the grid."""
        return (
            len(self.scenarios)
            * len(self.seeds)
            * len(self.fprs)
            * len(self.variants)
        )

    def runs(self) -> list[RunSpec]:
        """Expand the grid into per-run specs.

        Returns:
            One :class:`RunSpec` per grid cell in deterministic
            (scenario, seed, fpr, variant) order, each stamped with its
            index — the identity used by streaming files, resume,
            sharding and merge.
        """
        specs: list[RunSpec] = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                for fpr in self.fprs:
                    cell_noise = (
                        None
                        if self.noise is None
                        else self.noise.for_cell(
                            scenario, int(seed), float(fpr)
                        )
                    )
                    for variant in self.variants:
                        specs.append(
                            RunSpec(
                                index=len(specs),
                                scenario=scenario,
                                seed=int(seed),
                                fpr=float(fpr),
                                variant=variant.name,
                                params=variant.params,
                                stride=self.stride,
                                provisioned_fpr=self.provisioned_fpr,
                                cameras=tuple(self.cameras),
                                backend=self.backend,
                                noise=cell_noise,
                            )
                        )
        return specs

    def shard(self, index: int, count: int) -> list[RunSpec]:
        """Deterministically partition the run grid into ``count`` parts.

        The grid is split by (scenario, seed, fpr) **cell**: cell ``j``
        (in grid order) goes to shard ``j % count``, and a shard owns
        *all* parameter variants of its cells. The stride spreads
        scenarios and seeds evenly over shards (no shard gets all the
        expensive scenarios), while keeping variants together preserves
        the cross-variant trace cache — each shard still simulates its
        cells once and evaluates every variant from the cached trace.

        Determinism guarantees: the partition is a pure function of the
        grid — the union of all shards is exactly :meth:`runs`, shards
        never overlap, and each run keeps its full-grid index — which
        is what lets
        :meth:`CampaignResult.merge <repro.batch.results.CampaignResult.merge>`
        stitch shard files back into the monolithic result.

        Args:
            index: which shard to take, ``0 <= index < count``.
            count: total number of shards; at most the number of
                (scenario, seed, fpr) cells, so no shard is empty.

        Returns:
            The shard's runs, ascending by full-grid index.
        """
        cells = self.size // len(self.variants)
        if count < 1:
            raise ConfigurationError(
                f"shard count must be at least 1, got {count}"
            )
        if count > cells:
            raise ConfigurationError(
                f"cannot split {cells} (scenario, seed, fpr) cells "
                f"into {count} shards"
            )
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        variants = len(self.variants)
        return [
            spec
            for spec in self.runs()
            if (spec.index // variants) % count == index
        ]

    def to_dict(self) -> dict:
        """JSON-ready grid description (the JSONL header payload)."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "fprs": list(self.fprs),
            "variants": [
                {
                    "name": variant.name,
                    "params": (
                        None
                        if variant.params is None
                        else asdict(variant.params)
                    ),
                }
                for variant in self.variants
            ],
            "stride": self.stride,
            "provisioned_fpr": self.provisioned_fpr,
            "cameras": list(self.cameras),
            "backend": self.backend,
            "noise": None if self.noise is None else self.noise.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scenarios=tuple(data["scenarios"]),
            seeds=tuple(int(seed) for seed in data["seeds"]),
            fprs=tuple(float(fpr) for fpr in data["fprs"]),
            variants=tuple(
                ParamVariant(
                    name=raw["name"],
                    params=(
                        None
                        if raw.get("params") is None
                        else ZhuyiParams(**raw["params"])
                    ),
                )
                for raw in data["variants"]
            ),
            stride=float(data["stride"]),
            provisioned_fpr=float(data["provisioned_fpr"]),
            cameras=tuple(data["cameras"]),
            # Headers written before the backend selector existed ran
            # the only solver there was — the scalar loop's equal-output
            # successor — so default to it. Likewise, headers predating
            # evaluation-time noise were always noise-free.
            backend=data.get("backend", "batched"),
            noise=(
                None
                if data.get("noise") is None
                else PerceptionNoise.from_dict(data["noise"])
            ),
        )


def full_catalog_campaign(
    seeds: Sequence[int] = (0,),
    fprs: Sequence[float] = (30.0,),
    stride: float = 0.05,
) -> Campaign:
    """A campaign over every registered scenario (incl. expansions)."""
    from repro.scenarios.catalog import SCENARIOS

    return Campaign(
        scenarios=tuple(SCENARIOS),
        seeds=tuple(seeds),
        fprs=tuple(fprs),
        stride=stride,
    )
