"""Adversarial scenario search: evolutionary fuzzing of the catalog.

The catalog's worst cases live *between* its hand-written entries; this
package searches for them. A :class:`~repro.scenarios.fuzzed.ParamSpace`
declares each family's mutable genes (gaps, speeds, trigger times,
maneuver durations, decelerations, actor counts, curvature) with typed
bounds; :func:`run_fuzz` evolves genomes under tournament selection,
elitism and bounded Gaussian mutation — every stochastic choice a
counter-RNG draw keyed by (generation, slot, gene) — and evaluates each
generation as an ordinary :class:`~repro.batch.campaign.Campaign`, so
the search inherits workers, backends, the simulate-once trace store,
kill-safety and resume from the campaign layer for free.

Quickstart::

    from repro.fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(family="cut_out", population=8, generations=4)
    result = run_fuzz(config, out_dir="fuzz_out")
    print(result.best)  # worst-case genome found, archived on disk

See ``repro fuzz --help`` for the CLI face and docs/CAMPAIGNS.md
("Fuzzing") for the workflow, fitness choices and archive layout.
"""

from repro.fuzz.evolve import (
    FuzzConfig,
    FuzzResult,
    initial_population,
    mutate,
    next_population,
    run_fuzz,
    tournament_pick,
)
from repro.fuzz.fitness import (
    FITNESS_CHOICES,
    score_disagreement,
    score_key,
    score_rows,
)

__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "run_fuzz",
    "initial_population",
    "mutate",
    "next_population",
    "tournament_pick",
    "FITNESS_CHOICES",
    "score_rows",
    "score_disagreement",
    "score_key",
]
