"""Fitness functions: campaign run rows -> one scalar per genome.

A genome's fitness is computed from the streamed JSONL rows of the
generation campaign it ran in — never from in-memory simulation state —
so fitness is exactly as reproducible, resumable and backend-independent
as campaign files themselves are.

Three fitness functions, selected by name:

* ``latency`` (default): the scenario's peak estimated FPR demand — the
  paper's "estimated latency requirement". Searching for its maximum
  finds the catalog's hardest perception workloads.
* ``mrf_margin``: peak demand *above the rate the run provisioned*
  (``max_fpr - fpr``); positive means the scenario violates its
  provision — the minimum-required-FPR story's failure margin.
* ``disagreement``: peak ``|max_fpr|`` difference between the
  configured backend and the scalar reference for identical cells — an
  adversarial search for backend-parity breaks (it should flatline at
  0.0; any positive fitness is a found bug).

Collisions score ``2 x provisioned_fpr`` — beyond any estimable demand,
so the search treats "no latency can save this" as the worst case it
can find. Failed rows (captured errors) contribute nothing; a genome
with only failed rows has fitness ``None`` and dies out of the
population — which is why the scenario-parameter hygiene checks
(bounded jitter fractions, clamped stations) matter: they keep mutation
from wasting generations on degenerate geometry.
"""

from __future__ import annotations

from typing import Sequence

from repro.batch.results import RunSummary
from repro.errors import ConfigurationError

#: Fitness function names accepted by the search and the CLI.
FITNESS_CHOICES = ("latency", "mrf_margin", "disagreement")


def _collision_score(provisioned_fpr: float) -> float:
    return 2.0 * provisioned_fpr


def score_rows(
    rows: Sequence[RunSummary],
    fitness: str,
    provisioned_fpr: float,
) -> float | None:
    """One genome's fitness from its campaign rows.

    Args:
        rows: the genome scenario's run summaries (any seed/FPR cells).
        fitness: ``"latency"`` or ``"mrf_margin"``; ``"disagreement"``
            needs two row sets — use :func:`score_disagreement`.
        provisioned_fpr: the campaign's provision (collision score).

    Returns:
        The maximum per-row score, or ``None`` when no row is usable
        (every run failed).
    """
    if fitness not in ("latency", "mrf_margin"):
        raise ConfigurationError(
            f"unknown row fitness {fitness!r}; "
            f"choose from {FITNESS_CHOICES}"
        )
    values: list[float] = []
    for row in rows:
        if not row.ok:
            continue
        if row.collided:
            demand = _collision_score(provisioned_fpr)
        elif row.max_fpr is not None:
            demand = float(row.max_fpr)
        else:
            continue
        if fitness == "mrf_margin":
            demand -= float(row.fpr)
        values.append(demand)
    return max(values) if values else None


def score_disagreement(
    rows: Sequence[RunSummary],
    reference_rows: Sequence[RunSummary],
) -> float | None:
    """Peak ``|max_fpr|`` difference between two backends' row sets.

    Rows pair by (seed, fpr, variant) cell. The simulation layer is
    shared, so paired rows must agree on the collision outcome — a
    mismatch *is* a parity break and scores infinite disagreement
    rather than being skipped.
    """
    reference = {
        (row.seed, row.fpr, row.variant): row
        for row in reference_rows
        if row.ok
    }
    values: list[float] = []
    for row in rows:
        if not row.ok:
            continue
        other = reference.get((row.seed, row.fpr, row.variant))
        if other is None:
            continue
        if row.collided != other.collided:
            return float("inf")
        if row.collided:
            values.append(0.0)
        elif row.max_fpr is not None and other.max_fpr is not None:
            values.append(abs(float(row.max_fpr) - float(other.max_fpr)))
    return max(values) if values else None


def score_key(score: float | None) -> float:
    """Ordering key treating unusable genomes as worst."""
    return float("-inf") if score is None else score
