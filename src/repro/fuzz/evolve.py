"""The evolutionary scenario search: generations as campaigns.

One generation = one :class:`~repro.batch.campaign.Campaign` over the
population's registered genome scenarios (plus the family's base
scenario as the fitness baseline), executed by
:class:`~repro.batch.runner.CampaignRunner` into
``gen_<NNN>.jsonl`` under the search's output directory. Everything the
campaign layer guarantees is inherited wholesale: process-pool workers,
any latency backend, `--store` simulate-once warm reuse (elites and
re-discovered genomes cost nothing to re-evaluate), kill-safe streamed
JSONL — and because a generation file is an ordinary campaign file, a
killed search resumes by finishing the interrupted generation's missing
cells and re-deriving everything after it.

Determinism: the search trajectory is a pure function of
``(config.seed, config)``. Every stochastic choice — initial genomes,
tournament picks, mutation offsets — is a counter-RNG draw keyed by
``(generation, slot, gene)`` coordinates (streams ``fuzz.init`` /
``fuzz.select`` / ``fuzz.mutate``), and fitness comes from campaign
rows that are themselves byte-identical across backends, worker counts,
shards and resume cycles. Re-running the same search therefore rewrites
the same archive byte for byte.

The archive (``archive.json``) records the top genomes as
``{"name", "family", "params", "fitness", "generation"}`` entries;
``repro campaign --fuzz-archive archive.json`` (or the
``REPRO_FUZZ_RECIPES`` environment variable) rebuilds them as catalog
entries anywhere, turning a discovered worst case into a permanent
regression workload. ``search.json`` records the per-generation
trajectory; elitism makes its ``best_so_far`` column monotonically
non-decreasing, which the CI smoke job asserts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.batch.campaign import Campaign
from repro.batch.results import CampaignResult
from repro.batch.runner import CampaignRunner
from repro.core.latency import BACKENDS
from repro.core.rng import (
    STREAM_FUZZ_INIT,
    STREAM_FUZZ_MUTATE,
    STREAM_FUZZ_SELECT,
    counter_normal,
    counter_uniform,
)
from repro.errors import ConfigurationError
from repro.fuzz.fitness import (
    FITNESS_CHOICES,
    score_disagreement,
    score_key,
    score_rows,
)
from repro.scenarios.fuzzed import (
    RECIPES_ENV,
    fuzzed_recipe,
    fuzzed_recipes,
    get_family,
    register_fuzzed,
)

#: Schema version of archive.json / search.json payloads.
ARCHIVE_SCHEMA = 1

ProgressHook = Callable[[str], None]


@dataclass(frozen=True)
class FuzzConfig:
    """One evolutionary search, fully specified.

    Attributes:
        family: fuzz family to search (see ``FUZZ_FAMILIES``).
        population: genomes per generation.
        generations: generations to run.
        elite: top genomes copied unchanged into the next generation
            (what makes best-so-far monotone — and, under ``--store``,
            free to re-evaluate).
        tournament: candidates per tournament selection pick.
        mutation_scale: Gaussian mutation sigma as a fraction of each
            gene's range.
        seed: root seed of the whole search trajectory.
        fitness: fitness function name (:data:`FITNESS_CHOICES`).
        sim_seeds: scenario jitter seeds each genome is evaluated at.
        fprs: fixed FPR settings each genome is evaluated at.
        stride: offline evaluation stride (seconds).
        backend: latency backend generations run under.
        provisioned_fpr: provision used for collision scoring.
        archive_size: genomes kept in the final archive.
    """

    family: str
    population: int = 16
    generations: int = 8
    elite: int = 2
    tournament: int = 3
    mutation_scale: float = 0.15
    seed: int = 0
    fitness: str = "latency"
    sim_seeds: tuple[int, ...] = (0,)
    fprs: tuple[float, ...] = (30.0,)
    stride: float = 0.05
    backend: str = "batched"
    provisioned_fpr: float = 30.0
    archive_size: int = 5

    def __post_init__(self) -> None:
        get_family(self.family)
        if self.population < 2:
            raise ConfigurationError("population must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be at least 1")
        if not 0 <= self.elite < self.population:
            raise ConfigurationError(
                f"elite must be in [0, population), got {self.elite}"
            )
        if self.tournament < 1:
            raise ConfigurationError("tournament size must be at least 1")
        if not 0.0 < self.mutation_scale <= 1.0:
            raise ConfigurationError(
                "mutation scale must be in (0, 1] of the gene range, "
                f"got {self.mutation_scale}"
            )
        if self.fitness not in FITNESS_CHOICES:
            raise ConfigurationError(
                f"unknown fitness {self.fitness!r}; "
                f"choose from {FITNESS_CHOICES}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if not self.sim_seeds or not self.fprs:
            raise ConfigurationError(
                "fuzz sim_seeds and fprs must be non-empty"
            )
        if self.stride <= 0.0:
            raise ConfigurationError(
                f"stride must be positive, got {self.stride}"
            )
        if self.archive_size < 1:
            raise ConfigurationError("archive size must be at least 1")

    def to_dict(self) -> dict:
        """JSON-ready description (recorded in search.json)."""
        return {
            "family": self.family,
            "population": self.population,
            "generations": self.generations,
            "elite": self.elite,
            "tournament": self.tournament,
            "mutation_scale": self.mutation_scale,
            "seed": self.seed,
            "fitness": self.fitness,
            "sim_seeds": list(self.sim_seeds),
            "fprs": list(self.fprs),
            "stride": self.stride,
            "backend": self.backend,
            "provisioned_fpr": self.provisioned_fpr,
            "archive_size": self.archive_size,
        }


@dataclass
class FuzzResult:
    """Outcome of one search: archive entries plus the trajectory."""

    config: FuzzConfig
    base_fitness: float | None
    archive: list[dict]
    per_generation: list[dict]
    archive_path: Path
    search_path: Path
    generation_files: list[Path] = field(default_factory=list)

    @property
    def best(self) -> dict | None:
        """The archive's top entry (highest fitness), if any."""
        return self.archive[0] if self.archive else None


# ----------------------------------------------------------------------
# the counter-keyed evolutionary operators (pure functions of the key)
# ----------------------------------------------------------------------


def initial_population(config: FuzzConfig) -> list[dict]:
    """Generation 0: the family defaults plus uniform random genomes.

    Slot 0 is always the base tuning (the search starts from the
    catalog's own point); slots 1.. draw each gene uniformly in bounds
    from the ``fuzz.init`` stream keyed by (slot, gene).
    """
    space = get_family(config.family).space
    population = [space.defaults()]
    for slot in range(1, config.population):
        genome: dict = {}
        for index, gene in enumerate(space.genes):
            u = float(
                counter_uniform(config.seed, STREAM_FUZZ_INIT, slot, index)
            )
            genome[gene.name] = gene.quantize(
                gene.low + u * (gene.high - gene.low)
            )
        population.append(genome)
    return population


def tournament_pick(
    config: FuzzConfig,
    scores: list[float | None],
    generation: int,
    child: int,
) -> int:
    """Index of the tournament winner for one child slot.

    Draws ``tournament`` candidate indices from the ``fuzz.select``
    stream keyed by (generation, child, round); the best-scoring
    candidate wins, lower slot breaking ties — fully deterministic.
    """
    best = -1
    for contest in range(config.tournament):
        u = float(
            counter_uniform(
                config.seed, STREAM_FUZZ_SELECT, generation, child, contest
            )
        )
        index = min(int(u * len(scores)), len(scores) - 1)
        if best < 0 or (score_key(scores[index]), -index) > (
            score_key(scores[best]),
            -best,
        ):
            best = index
    return best


def mutate(
    config: FuzzConfig, genome: dict, generation: int, child: int
) -> dict:
    """Bounded Gaussian mutation of every gene of one child genome.

    Each gene moves by ``mutation_scale * range * N(0, 1)`` with the
    normal drawn from the ``fuzz.mutate`` stream keyed by
    (generation, child, gene), then clips back into bounds (integer
    genes re-round). Mutating every gene with independent draws keeps
    the operator order-free: no per-child "how many genes" draw whose
    consumption order could matter.
    """
    space = get_family(config.family).space
    mutated: dict = {}
    for index, gene in enumerate(space.genes):
        offset = float(
            counter_normal(
                config.seed, STREAM_FUZZ_MUTATE, generation, child, index
            )
        )
        value = (
            float(genome[gene.name])
            + config.mutation_scale * (gene.high - gene.low) * offset
        )
        mutated[gene.name] = gene.quantize(value)
    return mutated


def next_population(
    config: FuzzConfig,
    population: list[dict],
    scores: list[float | None],
    generation: int,
) -> list[dict]:
    """Elites unchanged, then tournament-selected mutated children."""
    order = sorted(
        range(len(population)), key=lambda i: (-score_key(scores[i]), i)
    )
    elites = [dict(population[i]) for i in order[: config.elite]]
    children = [
        mutate(
            config,
            population[tournament_pick(config, scores, generation, child)],
            generation,
            child,
        )
        for child in range(config.population - config.elite)
    ]
    return elites + children


# ----------------------------------------------------------------------
# the search driver
# ----------------------------------------------------------------------


def _write_json(path: Path, payload: dict) -> None:
    """Deterministic, atomic JSON: sorted keys, trailing newline."""
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _run_generation(
    runner: CampaignRunner,
    campaign: Campaign,
    path: Path,
) -> CampaignResult:
    """Execute (or finish) one generation campaign file.

    An existing file is resumed — the fuzz-level resume story: finished
    generations are pure reloads, the interrupted one executes only its
    missing cells. A file whose grid does not match the expected
    campaign is a different search (other seed/config) and is refused
    rather than silently overwritten.
    """
    if path.exists():
        partial = CampaignResult.load_jsonl(path)
        if partial.campaign != campaign:
            raise ConfigurationError(
                f"existing generation file {path} was written by a "
                "different fuzz configuration or seed; use a fresh "
                "output directory"
            )
        return runner.resume(path, partial=partial)
    return runner.run(campaign, out=str(path))


def run_fuzz(
    config: FuzzConfig,
    out_dir: str | Path,
    runner: CampaignRunner | None = None,
    progress: ProgressHook | None = None,
) -> FuzzResult:
    """Run one evolutionary search and write its artifacts.

    Args:
        config: the search specification.
        out_dir: directory receiving ``gen_<NNN>.jsonl`` generation
            campaigns, ``recipes_gen<NNN>.json`` genome sidecars,
            ``archive.json`` and ``search.json``. Re-running with the
            same config over the same directory resumes/reproduces.
        runner: campaign runner to execute generations with (workers,
            trace store); a fresh single-worker runner by default.
        progress: called with one human-readable line per generation.

    Returns:
        The :class:`FuzzResult` with the archive and trajectory.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    runner = runner if runner is not None else CampaignRunner()
    family = get_family(config.family)
    population = initial_population(config)
    archive: dict[str, dict] = {}
    per_generation: list[dict] = []
    generation_files: list[Path] = []
    best_so_far: float | None = None
    base_fitness: float | None = None
    previous_env = os.environ.get(RECIPES_ENV)
    try:
        for generation in range(config.generations):
            names = [
                register_fuzzed(config.family, genome)
                for genome in population
            ]
            recipes_path = out / f"recipes_gen{generation:03d}.json"
            _write_json(recipes_path, fuzzed_recipes(sorted(set(names))))
            # Spawn-method campaign workers rebuild this generation's
            # genomes from the sidecar; fork workers inherit them.
            os.environ[RECIPES_ENV] = str(recipes_path)

            unique = list(dict.fromkeys(names))
            campaign = Campaign(
                scenarios=(family.base_scenario, *unique),
                seeds=config.sim_seeds,
                fprs=config.fprs,
                stride=config.stride,
                provisioned_fpr=config.provisioned_fpr,
                backend=config.backend,
            )
            gen_path = out / f"gen_{generation:03d}.jsonl"
            result = _run_generation(runner, campaign, gen_path)
            generation_files.append(gen_path)

            reference: CampaignResult | None = None
            if config.fitness == "disagreement":
                # The adversarial parity search evaluates every cell a
                # second time under the scalar reference backend (or
                # batched, when scalar *is* the configured backend).
                ref_backend = (
                    "batched" if config.backend == "scalar" else "scalar"
                )
                ref_campaign = Campaign(
                    scenarios=campaign.scenarios,
                    seeds=campaign.seeds,
                    fprs=campaign.fprs,
                    stride=campaign.stride,
                    provisioned_fpr=campaign.provisioned_fpr,
                    backend=ref_backend,
                )
                reference = _run_generation(
                    runner, ref_campaign, out / f"gen_{generation:03d}_ref.jsonl"
                )

            def fitness_of(scenario: str) -> float | None:
                rows = result.for_scenario(scenario)
                if config.fitness == "disagreement":
                    assert reference is not None
                    return score_disagreement(
                        rows, reference.for_scenario(scenario)
                    )
                return score_rows(
                    rows, config.fitness, config.provisioned_fpr
                )

            if base_fitness is None:
                base_fitness = fitness_of(family.base_scenario)
            scores = [fitness_of(name) for name in names]

            for slot, name in enumerate(names):
                if scores[slot] is None or name in archive:
                    continue
                archive[name] = {
                    "name": name,
                    **fuzzed_recipe(name),
                    "fitness": scores[slot],
                    "generation": generation,
                }
            ranked = sorted(
                archive.values(),
                key=lambda entry: (-entry["fitness"], entry["name"]),
            )[: config.archive_size]

            valid = [score for score in scores if score is not None]
            gen_best = max(valid) if valid else None
            if gen_best is not None and (
                best_so_far is None or gen_best > best_so_far
            ):
                best_so_far = gen_best
            best_slot = (
                min(
                    range(len(scores)),
                    key=lambda i: (-score_key(scores[i]), i),
                )
                if valid
                else None
            )
            per_generation.append(
                {
                    "generation": generation,
                    "best_fitness": gen_best,
                    "best_name": (
                        None if best_slot is None else names[best_slot]
                    ),
                    "best_so_far": best_so_far,
                    "mean_fitness": (
                        sum(valid) / len(valid) if valid else None
                    ),
                    "evaluated": len(result.summaries),
                    "failed": len(result.failures()),
                    "unique_genomes": len(unique),
                    "base_fitness": base_fitness,
                }
            )

            archive_payload = {
                "kind": "fuzz_archive",
                "schema": ARCHIVE_SCHEMA,
                "family": config.family,
                "fitness": config.fitness,
                "seed": config.seed,
                "base_scenario": family.base_scenario,
                "base_fitness": base_fitness,
                "entries": ranked,
            }
            search_payload = {
                "kind": "fuzz_search",
                "schema": ARCHIVE_SCHEMA,
                "config": config.to_dict(),
                "base_scenario": family.base_scenario,
                "base_fitness": base_fitness,
                "per_generation": per_generation,
                "best": ranked[0] if ranked else None,
                "exceeds_base": bool(
                    ranked
                    and base_fitness is not None
                    and ranked[0]["fitness"] > base_fitness
                ),
            }
            # Rewritten after every generation, so a killed search keeps
            # a coherent archive for the generations that finished.
            _write_json(out / "archive.json", archive_payload)
            _write_json(out / "search.json", search_payload)

            if progress is not None:
                shown = "-" if gen_best is None else f"{gen_best:.3f}"
                base_shown = (
                    "-" if base_fitness is None else f"{base_fitness:.3f}"
                )
                progress(
                    f"gen {generation + 1}/{config.generations}: "
                    f"best {shown} (base {base_shown}), "
                    f"{len(unique)} genome(s), "
                    f"{len(result.failures())} failure(s)"
                )

            if generation + 1 < config.generations:
                population = next_population(
                    config, population, scores, generation
                )
    finally:
        if previous_env is None:
            os.environ.pop(RECIPES_ENV, None)
        else:
            os.environ[RECIPES_ENV] = previous_env

    ranked = sorted(
        archive.values(),
        key=lambda entry: (-entry["fitness"], entry["name"]),
    )[: config.archive_size]
    return FuzzResult(
        config=config,
        base_fitness=base_fitness,
        archive=ranked,
        per_generation=per_generation,
        archive_path=out / "archive.json",
        search_path=out / "search.json",
        generation_files=generation_files,
    )
