"""The paper's nine driving scenarios (Table 1).

Each scenario is a 3-lane-road choreography with seeded jitter
reproducing the paper's run-to-run variance. ``build_scenario(name,
seed)`` returns a :class:`BuiltScenario` whose ``run(fpr)`` executes the
full closed loop and returns a trace.
"""

from repro.scenarios.base import BuiltScenario, ScenarioSpec, jittered
from repro.scenarios.catalog import (
    DEFAULT_DENSITY_COUNTS,
    DEFAULT_SWEEP_SPEEDS,
    SCENARIO_NAMES,
    SCENARIOS,
    build_scenario,
    density_sweep,
    speed_sweep,
)
from repro.scenarios.fuzzed import (
    FUZZ_FAMILIES,
    FuzzFamily,
    GeneSpec,
    ParamSpace,
    fuzzed_name,
    fuzzed_recipes,
    load_fuzzed_archive,
    register_fuzzed,
)

__all__ = [
    "ScenarioSpec",
    "BuiltScenario",
    "jittered",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "DEFAULT_DENSITY_COUNTS",
    "DEFAULT_SWEEP_SPEEDS",
    "build_scenario",
    "density_sweep",
    "speed_sweep",
    "FUZZ_FAMILIES",
    "FuzzFamily",
    "GeneSpec",
    "ParamSpace",
    "fuzzed_name",
    "fuzzed_recipes",
    "load_fuzzed_archive",
    "register_fuzzed",
]
