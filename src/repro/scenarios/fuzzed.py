"""Fuzzable scenario families: the genome <-> :class:`ScenarioSpec` binding.

The evolutionary search (:mod:`repro.fuzz`) mutates *genomes* — flat
``{gene name: value}`` mappings — not scenario objects. This module owns
the mapping between the two worlds:

* A :class:`GeneSpec` declares one mutable scenario parameter with typed
  bounds; a :class:`ParamSpace` is an ordered tuple of genes plus the
  canonicalization rules (rounding, integer coercion, bounds checks)
  that make a genome hashable and reproducible.
* A :class:`FuzzFamily` binds a space to a catalog base scenario and a
  builder that turns a canonical genome into a :class:`ScenarioSpec`.
* :func:`register_fuzzed` registers a genome as a first-class catalog
  entry named ``fuzzed_<family>_<digest>`` — the digest is a content
  hash of the canonical genome, so the same parameters always produce
  the same name, in any process, forever. It sits next to
  ``speed_sweep`` / ``density_sweep`` as the third catalog expander.
* Unlike sweep names, a digest is not self-describing, so fuzzed
  recipes travel as JSON (:func:`fuzzed_recipes` payloads and the fuzz
  archive): :func:`resolve_fuzzed` — called from
  ``catalog.ensure_scenario`` — rebuilds a fuzzed entry from the
  in-process recipe table or from the archive file named by the
  ``REPRO_FUZZ_RECIPES`` environment variable. That is how spawn-method
  workers and later ``repro campaign --fuzz-archive`` sessions replay a
  discovered worst case without the search that found it.
"""

# reprolint: disable-file=DET001 -- scenario-choreography legacy: fuzz
# family builders reuse the catalog's jittered-actor helpers, which
# consume the per-scenario generator in the pinned declaration order;
# the evolutionary search itself draws only counter RNG (fuzz.* stream
# tags). See scenarios/base.py's pragma.

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.road.track import Road, three_lane_curved_road
from repro.scenarios import catalog
from repro.scenarios.base import ScenarioSpec
from repro.units import mph_to_mps

#: Environment variable naming fuzz recipe/archive JSON file(s)
#: (``os.pathsep``-separated) consulted when resolving a fuzzed name.
RECIPES_ENV = "REPRO_FUZZ_RECIPES"

#: Hex digits of the canonical-genome digest used in fuzzed names.
DIGEST_LEN = 10

#: Decimal places a float gene is rounded to during canonicalization
#: (what both the digest and the rebuilt scenario see).
GENE_DECIMALS = 6


@dataclass(frozen=True)
class GeneSpec:
    """One mutable scenario parameter with typed bounds.

    Attributes:
        name: gene key in the genome mapping.
        low: inclusive lower bound.
        high: inclusive upper bound.
        default: the search's starting value (slot 0 of generation 0).
        integer: whether values are coerced to integers (actor counts).
    """

    name: str
    low: float
    high: float
    default: float
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("gene name must be non-empty")
        if not self.low < self.high:
            raise ConfigurationError(
                f"gene {self.name!r} bounds must satisfy low < high, "
                f"got [{self.low}, {self.high}]"
            )
        if self.integer and (
            self.low != int(self.low) or self.high != int(self.high)
        ):
            raise ConfigurationError(
                f"integer gene {self.name!r} needs integral bounds"
            )
        if not self.low <= self.default <= self.high:
            raise ConfigurationError(
                f"gene {self.name!r} default {self.default} outside "
                f"[{self.low}, {self.high}]"
            )

    def quantize(self, value: float) -> float | int:
        """Clip ``value`` into bounds and snap it onto the gene's grid.

        Floats round to :data:`GENE_DECIMALS` places, integers to whole
        numbers — the representation the digest hashes, so two runs that
        compute the same value through different float paths still agree
        on the scenario name.
        """
        clipped = min(max(float(value), self.low), self.high)
        if self.integer:
            return int(min(max(round(clipped), self.low), self.high))
        return round(clipped, GENE_DECIMALS)


@dataclass(frozen=True)
class ParamSpace:
    """An ordered, validated set of genes."""

    genes: tuple[GeneSpec, ...]

    def __post_init__(self) -> None:
        if not self.genes:
            raise ConfigurationError("a ParamSpace needs at least one gene")
        names = [gene.name for gene in self.genes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate gene names in {names}")

    @property
    def names(self) -> tuple[str, ...]:
        """Gene names in declaration order (the mutation key order)."""
        return tuple(gene.name for gene in self.genes)

    def defaults(self) -> dict[str, float | int]:
        """The family's starting genome."""
        return {gene.name: gene.quantize(gene.default) for gene in self.genes}

    def canonical(self, params: Mapping[str, float]) -> dict[str, float | int]:
        """Validate and normalize a genome for digesting and building.

        Every gene must be present, nothing extra, every value within
        bounds (quantization may only snap it onto the value grid, not
        move it inside the range — an out-of-range genome is a caller
        bug, not something to silently repair).
        """
        extra = sorted(set(params) - set(self.names))
        if extra:
            raise ConfigurationError(f"unknown gene(s) {extra}")
        canonical: dict[str, float | int] = {}
        for gene in self.genes:
            if gene.name not in params:
                raise ConfigurationError(f"missing gene {gene.name!r}")
            value = float(params[gene.name])
            if not np.isfinite(value):
                raise ConfigurationError(
                    f"gene {gene.name!r} value must be finite, got {value!r}"
                )
            rounded = round(value, GENE_DECIMALS)
            if not gene.low <= rounded <= gene.high:
                raise ConfigurationError(
                    f"gene {gene.name!r} value {value} outside "
                    f"[{gene.low}, {gene.high}]"
                )
            canonical[gene.name] = gene.quantize(value)
        return canonical


@dataclass(frozen=True)
class FuzzFamily:
    """A fuzzable scenario family: base entry, gene space, spec builder.

    Attributes:
        name: family key (also the middle of fuzzed scenario names).
        base_scenario: the catalog entry whose fitness a search must
            beat — always evaluated alongside each generation.
        description: one-line summary for docs and CLI listings.
        space: the family's gene space.
        build_spec: canonical genome -> :class:`ScenarioSpec` factory
            (called with the digest name and the canonical params).
    """

    name: str
    base_scenario: str
    description: str
    space: ParamSpace
    build_spec: Callable[[str, Mapping[str, float]], ScenarioSpec]


def _digest(family: str, params: Mapping[str, float]) -> str:
    payload = json.dumps(
        {"family": family, "params": dict(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:DIGEST_LEN]


def fuzzed_name(family: str, params: Mapping[str, float]) -> str:
    """The catalog name a canonical genome registers under."""
    space = get_family(family).space
    return f"fuzzed_{family}_{_digest(family, space.canonical(params))}"


# ----------------------------------------------------------------------
# family spec builders
# ----------------------------------------------------------------------


def _build_cut_out(name: str, params: Mapping[str, float]) -> ScenarioSpec:
    p = dict(params)

    def build(road: Road, rng: np.random.Generator) -> list:
        actors = catalog._cut_out_actors(
            road,
            rng,
            ego_speed_mph=p["ego_speed_mph"],
            lead_gap=p["lead_gap"],
            bail_out_gap=p["bail_out_gap"],
            duration=p["duration"],
            cruise_before=p["cruise_before"],
        )
        count = int(p["actor_count"])
        if count:
            actors += catalog._background_actors(
                road,
                rng,
                count,
                ego_speed=mph_to_mps(p["ego_speed_mph"]),
                ego_lane=1,
                ego_station=catalog._EGO_START,
                queue_offset=p["queue_offset"],
            )
        return actors

    return ScenarioSpec(
        name=name,
        description="cut-out fuzz variant (evolutionary search genome)",
        ego_speed_mph=p["ego_speed_mph"],
        ego_lane=1,
        ego_station=catalog._EGO_START,
        activity={"front": True, "right": True, "left": True},
        paper_mrf="-",
        build_road=catalog._straight_road,
        build_actors=build,
        duration=35.0,
    )


def _build_challenging_cut_in(
    name: str, params: Mapping[str, float]
) -> ScenarioSpec:
    p = dict(params)

    def build(road: Road, rng: np.random.Generator) -> list:
        return catalog._cut_in_actors(
            road,
            rng,
            ego_speed_mph=p["ego_speed_mph"],
            actor_speed_mph=p["ego_speed_mph"] - p["speed_delta_mph"],
            trigger_gap=p["trigger_gap"],
            # start = trigger + extra keeps the cutter ahead of its own
            # trigger distance for every genome the bounds allow.
            start_gap=p["trigger_gap"] + p["start_extra"],
            duration=p["duration"],
            with_left_blocker=True,
            blocker_station_offset=p["blocker_offset"],
        )

    return ScenarioSpec(
        name=name,
        description=(
            "challenging cut-in fuzz variant (evolutionary search genome)"
        ),
        ego_speed_mph=p["ego_speed_mph"],
        ego_lane=1,
        ego_station=catalog._EGO_START,
        activity={"front": True, "right": True, "left": False},
        paper_mrf="-",
        build_road=catalog._straight_road,
        build_actors=build,
        duration=35.0,
    )


def _build_vehicle_following(
    name: str, params: Mapping[str, float]
) -> ScenarioSpec:
    p = dict(params)

    def build(road: Road, rng: np.random.Generator) -> list:
        return catalog._vehicle_following_actors(
            road,
            rng,
            ego_speed_mph=p["ego_speed_mph"],
            lead_gap=p["lead_gap"],
            brake_time=p["brake_time"],
            decel=p["decel"],
        )

    return ScenarioSpec(
        name=name,
        description=(
            "vehicle-following fuzz variant (evolutionary search genome)"
        ),
        ego_speed_mph=p["ego_speed_mph"],
        ego_lane=1,
        ego_station=catalog._EGO_START,
        activity={"front": True, "right": False, "left": False},
        paper_mrf="-",
        build_road=catalog._straight_road,
        build_actors=build,
        duration=35.0,
    )


def _build_cut_in_curved(
    name: str, params: Mapping[str, float]
) -> ScenarioSpec:
    p = dict(params)
    ego_station = 40.0

    def build_road() -> Road:
        # Curvature is a gene: each genome carves its own arc radius.
        return three_lane_curved_road(
            entry_length=150.0,
            radius=p["radius"],
            arc_length=1400.0,
            turn_left=False,
        )

    def build(road: Road, rng: np.random.Generator) -> list:
        return catalog._cut_in_actors(
            road,
            rng,
            ego_speed_mph=p["ego_speed_mph"],
            actor_speed_mph=p["ego_speed_mph"] - p["speed_delta_mph"],
            trigger_gap=p["trigger_gap"],
            start_gap=p["trigger_gap"] + p["start_extra"],
            duration=p["duration"],
            with_left_blocker=True,
            blocker_station_offset=-2.0,
            ego_station=ego_station,
        )

    return ScenarioSpec(
        name=name,
        description=(
            "curved-road cut-in fuzz variant (evolutionary search genome)"
        ),
        ego_speed_mph=p["ego_speed_mph"],
        ego_lane=1,
        ego_station=ego_station,
        activity={"front": True, "right": True, "left": True},
        paper_mrf="-",
        build_road=build_road,
        build_actors=build,
        duration=40.0,
    )


#: The fuzzable families. Bounds bracket the Table 1 tunings (defaults
#: are the base scenarios' values) while staying physical: speeds and
#: gaps positive, cut-in start strictly past the trigger, blocker
#: behind the ego, curve radii drivable at the speed bounds.
FUZZ_FAMILIES: dict[str, FuzzFamily] = {
    family.name: family
    for family in (
        FuzzFamily(
            name="cut_out",
            base_scenario="cut_out",
            description=(
                "cut-out reveal: gaps, maneuver timing and background "
                "traffic around the 20 mph Table 1 baseline"
            ),
            space=ParamSpace(
                genes=(
                    GeneSpec("ego_speed_mph", 15.0, 55.0, 20.0),
                    GeneSpec("lead_gap", 12.0, 45.0, 22.7),
                    GeneSpec("bail_out_gap", 14.0, 40.0, 22.0),
                    GeneSpec("duration", 1.0, 3.0, 1.8),
                    GeneSpec("cruise_before", 1.0, 4.0, 2.5),
                    GeneSpec("actor_count", 0, 6, 0, integer=True),
                    GeneSpec("queue_offset", -40.0, 150.0, 60.0),
                )
            ),
            build_spec=_build_cut_out,
        ),
        FuzzFamily(
            name="challenging_cut_in",
            base_scenario="challenging_cut_in",
            description=(
                "close cut-in with left blocker: speeds, trigger/start "
                "gaps, maneuver duration, blocker placement"
            ),
            space=ParamSpace(
                genes=(
                    GeneSpec("ego_speed_mph", 35.0, 70.0, 60.0),
                    GeneSpec("speed_delta_mph", 8.0, 30.0, 20.0),
                    GeneSpec("trigger_gap", 14.0, 40.0, 26.0),
                    GeneSpec("start_extra", 8.0, 35.0, 19.0),
                    GeneSpec("duration", 1.2, 3.2, 2.2),
                    GeneSpec("blocker_offset", -14.0, -2.0, -9.0),
                )
            ),
            build_spec=_build_challenging_cut_in,
        ),
        FuzzFamily(
            name="vehicle_following",
            base_scenario="vehicle_following",
            description=(
                "lead-brakes-to-stop: following gap, brake onset and "
                "deceleration around the 70 mph baseline"
            ),
            space=ParamSpace(
                genes=(
                    GeneSpec("ego_speed_mph", 30.0, 70.0, 70.0),
                    GeneSpec("lead_gap", 18.0, 65.0, 50.0),
                    GeneSpec("brake_time", 1.5, 6.0, 4.0),
                    GeneSpec("decel", 2.0, 8.0, 3.0),
                )
            ),
            build_spec=_build_vehicle_following,
        ),
        FuzzFamily(
            name="challenging_cut_in_curved",
            base_scenario="challenging_cut_in_curved",
            description=(
                "curved-road cut-in: arc radius (curvature gene), speeds "
                "and gap geometry on the composite Frenet road"
            ),
            space=ParamSpace(
                genes=(
                    GeneSpec("radius", 150.0, 600.0, 350.0),
                    GeneSpec("ego_speed_mph", 25.0, 50.0, 40.0),
                    GeneSpec("speed_delta_mph", 6.0, 25.0, 14.0),
                    GeneSpec("trigger_gap", 12.0, 30.0, 20.0),
                    GeneSpec("start_extra", 8.0, 28.0, 18.0),
                    GeneSpec("duration", 1.2, 3.2, 2.2),
                )
            ),
            build_spec=_build_cut_in_curved,
        ),
    )
}


def get_family(name: str) -> FuzzFamily:
    """Look up a fuzz family or fail with the catalog of choices."""
    try:
        return FUZZ_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fuzz family {name!r}; "
            f"choose from {sorted(FUZZ_FAMILIES)}"
        ) from None


#: Process-local recipes for every fuzzed entry registered here:
#: ``name -> {"family": ..., "params": ...}``. What :func:`resolve_fuzzed`
#: and recipe files are built from.
_FUZZED_RECIPES: dict[str, dict] = {}


def register_fuzzed(family: str, params: Mapping[str, float]) -> str:
    """Register a genome as the catalog entry ``fuzzed_<family>_<digest>``.

    Idempotent, like ``speed_sweep`` / ``density_sweep``: the digest is
    a pure function of the canonical genome, so re-registering the same
    parameters returns the existing entry. Returns the scenario name.
    """
    fam = get_family(family)
    canonical = fam.space.canonical(params)
    name = f"fuzzed_{family}_{_digest(family, canonical)}"
    _FUZZED_RECIPES[name] = {"family": family, "params": canonical}
    if name not in catalog.SCENARIOS:
        catalog._register(fam.build_spec(name, canonical))
    return name


def fuzzed_recipe(name: str) -> dict:
    """The ``{"family", "params"}`` recipe behind a registered name."""
    try:
        recipe = _FUZZED_RECIPES[name]
    except KeyError:
        raise ConfigurationError(
            f"{name!r} is not a registered fuzzed scenario"
        ) from None
    return {"family": recipe["family"], "params": dict(recipe["params"])}


def fuzzed_recipes(names: list[str] | None = None) -> dict:
    """A JSON-ready recipes payload for ``names`` (default: all known)."""
    if names is None:
        names = sorted(_FUZZED_RECIPES)
    entries = [
        {"name": name, **fuzzed_recipe(name)} for name in names
    ]
    return {"kind": "fuzz_recipes", "schema": 1, "entries": entries}


def load_fuzzed_archive(path: str | os.PathLike) -> list[str]:
    """Register every genome recorded in a recipes or archive JSON file.

    Accepts both the per-generation recipe sidecars and the final fuzz
    archive — anything with an ``entries`` list of
    ``{"name", "family", "params"}`` records. Each entry's recorded name
    must match the digest recomputed from its parameters, so a corrupted
    or hand-edited archive fails loudly instead of silently rebuilding a
    different scenario under a trusted name. Returns the names, in file
    order.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable fuzz archive {path}: {exc}")
    entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise ConfigurationError(
            f"fuzz archive {path} has no 'entries' list"
        )
    names: list[str] = []
    for entry in entries:
        try:
            recorded = entry["name"]
            family = entry["family"]
            params = entry["params"]
        except (TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"malformed fuzz archive entry in {path}: {entry!r}"
            ) from exc
        name = register_fuzzed(family, params)
        if name != recorded:
            raise ConfigurationError(
                f"fuzz archive {path} entry {recorded!r} does not match "
                f"its parameters (rebuilt as {name!r}); refusing a "
                "tampered or corrupted archive"
            )
        names.append(name)
    return names


def resolve_fuzzed(name: str) -> bool:
    """Make a fuzzed ``name`` registered, if any known recipe matches.

    Resolution order: already registered, the in-process recipe table,
    then the archive file(s) named by ``REPRO_FUZZ_RECIPES``
    (``os.pathsep``-separated). Returns whether the name is registered
    afterwards — the ``ensure_scenario`` contract.
    """
    if name in catalog.SCENARIOS:
        return True
    recipe = _FUZZED_RECIPES.get(name)
    if recipe is not None:
        register_fuzzed(recipe["family"], recipe["params"])
        return name in catalog.SCENARIOS
    archives = os.environ.get(RECIPES_ENV, "")
    for path in archives.split(os.pathsep):
        if path and os.path.exists(path):
            load_fuzzed_archive(path)
            if name in catalog.SCENARIOS:
                return True
    return name in catalog.SCENARIOS
