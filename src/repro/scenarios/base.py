"""Scenario machinery: specs, seeded jitter, and the run harness.

A :class:`ScenarioSpec` declares a scenario's geometry and choreography
as *factories* — actors carry latched triggers and other run state, so
every run rebuilds them. Jitter is drawn from a generator seeded only by
the scenario seed, which makes runs of the same seed at different FPR
settings share identical choreography (paired comparisons, as needed for
the minimum-required-FPR search), while different seeds reproduce the
paper's "simulations can be non-deterministic ... run ten times and
average" protocol.
"""

# reprolint: disable-file=DET001 -- scenario-choreography legacy: the
# jitter generator is seeded once per BuiltScenario and its draws are
# consumed in a fixed, documented builder order, which the recorded
# goldens pin; migrating choreography to counter draws is a deliberate
# one-time stream break, not a drive-by. New draw sites must use
# repro.core.rng.

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.actors.vehicle import Actor
from repro.dynamics.state import VehicleSpec, VehicleState
from repro.core.rng import derive_seed
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.detection import DetectionModel
from repro.perception.pipeline import PerceptionSystem
from repro.perception.sensor import default_rig
from repro.planning.planner import Planner, PlannerConfig
from repro.road.lane import FrenetPoint
from repro.road.track import Road
from repro.sim.simulator import SimHook, SimulationConfig, Simulator
from repro.sim.trace import ScenarioTrace
from repro.units import mph_to_mps


def jittered(
    rng: np.random.Generator, value: float, fraction: float = 0.1
) -> float:
    """``value`` scaled by a uniform factor in ``[1-fraction, 1+fraction]``."""
    if fraction < 0.0:
        raise ConfigurationError("jitter fraction must be non-negative")
    if fraction > 1.0:
        # A fraction above 1 lets the factor go negative, silently
        # flipping the sign of gaps, durations and decelerations.
        raise ConfigurationError(
            f"jitter fraction must be <= 1.0, got {fraction}"
        )
    if fraction == 0.0:
        return value
    return value * (1.0 + rng.uniform(-fraction, fraction))


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one catalog scenario.

    Attributes:
        name: catalog key.
        description: one-line summary (mirrors Table 1's description).
        ego_speed_mph: ego cruise speed as the paper quotes it.
        ego_lane: ego's lane (0 = rightmost).
        ego_station: ego start station along the road (m).
        activity: the paper's Front/Right/Left activity flags.
        paper_mrf: the paper's minimum-required-FPR entry (for reports).
        build_road: road factory.
        build_actors: actor factory, given the road and the jitter RNG.
        duration: maximum simulated time (s).
    """

    name: str
    description: str
    ego_speed_mph: float
    ego_lane: int
    ego_station: float
    activity: Mapping[str, bool]
    paper_mrf: str
    build_road: Callable[[], Road]
    build_actors: Callable[[Road, np.random.Generator], list[Actor]]
    duration: float = 30.0


class BuiltScenario:
    """A scenario bound to a seed, ready to run at any FPR setting."""

    def __init__(self, spec: ScenarioSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self.road = spec.build_road()

    @property
    def name(self) -> str:
        """Catalog name of the scenario."""
        return self.spec.name

    @property
    def ego_speed(self) -> float:
        """Ego cruise speed in m/s."""
        return mph_to_mps(self.spec.ego_speed_mph)

    def ego_initial_state(self) -> VehicleState:
        """The ego's state at t = 0."""
        offset = self.road.lane_offset(self.spec.ego_lane)
        position = self.road.to_world(
            FrenetPoint(self.spec.ego_station, offset)
        )
        return VehicleState(
            position=position,
            heading=self.road.heading_at(self.spec.ego_station),
            speed=self.ego_speed,
            accel=0.0,
        )

    def build_actors(self) -> list[Actor]:
        """Fresh, jittered actors for one run (same seed, same jitter)."""
        rng = np.random.default_rng(self.seed)
        return self.spec.build_actors(self.road, rng)

    @property
    def perception_seed(self) -> int:
        """Root seed for the counter-keyed perception draws.

        Derived through the seed-derivation stream rather than by an
        additive offset: ``seed + 7919`` would make scenario seed
        ``s + 7919``'s choreography generator collide with seed ``s``'s
        perception root.
        """
        return derive_seed(self.seed, "perception")

    def run(
        self,
        fpr: float | Mapping[str, float] = 30.0,
        hooks: Sequence[SimHook] = (),
        detection_model: DetectionModel | None = None,
        sim_config: SimulationConfig | None = None,
        confirmation_hits: int = 5,
        ego_spec: VehicleSpec | None = None,
    ) -> ScenarioTrace:
        """Run the closed loop once and return the trace.

        Args:
            fpr: fixed rate for all cameras, or a per-camera mapping.
            hooks: simulation hooks (e.g. the Zhuyi online system).
            detection_model: perception characteristics; the default has
                occlusion on (DriveSim cameras cannot see through
                vehicles — this is what makes cut-out reveals sudden).
            sim_config: overrides duration / dt / stopping behaviour.
            confirmation_hits: the tracker's ``K``.
            ego_spec: the ego's physical spec.
        """
        spec = self.spec
        ego_spec = ego_spec if ego_spec is not None else VehicleSpec()
        detection = (
            detection_model
            if detection_model is not None
            else DetectionModel(position_noise=0.08, occlusion=True)
        )
        perception = PerceptionSystem(
            rig=default_rig(),
            detection_model=detection,
            fpr=fpr,
            confirmation_hits=confirmation_hits,
            # Decorrelate detection noise from the choreography jitter:
            # the derived stream keeps the counter-keyed perception
            # draws off build_actors' generator for every seed pair.
            seed=self.perception_seed,
        )
        planner = Planner(
            config=PlannerConfig(
                road=self.road,
                target_lane=spec.ego_lane,
                desired_speed=self.ego_speed,
            ),
            spec=ego_spec,
        )
        config = (
            sim_config
            if sim_config is not None
            else SimulationConfig(duration=spec.duration)
        )
        simulator = Simulator(
            scenario_name=spec.name,
            road=self.road,
            ego_initial=self.ego_initial_state(),
            ego_spec=ego_spec,
            planner=planner,
            perception=perception,
            actors=self.build_actors(),
            config=config,
            hooks=hooks,
            seed=self.seed,
        )
        trace = simulator.run()
        trace.metadata.update(
            {
                "ego_speed_mph": spec.ego_speed_mph,
                "ego_lane": spec.ego_lane,
                "activity": dict(spec.activity),
                "paper_mrf": spec.paper_mrf,
            }
        )
        return trace
