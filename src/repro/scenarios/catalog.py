"""The nine Table 1 scenarios.

Every scenario follows the paper's prose (Section 4.1). Geometry numbers
(gaps, trigger distances) are this reproduction's tuning — the paper does
not publish them — chosen so the *shape* of Table 1 holds: the cut-out
scenarios are the hardest (highest MRF), the activity scenarios are
benign, and everything is survivable at 30 FPR.

Note: the prose for "Front & right activity 3" says the actor cuts in
from the *right-most* lane while the table flags Left activity; we follow
the prose (see DESIGN.md, "known paper ambiguities").
"""

# reprolint: disable-file=DET001 -- scenario-choreography legacy: actor
# builders consume the per-scenario jitter generator (seeded in
# BuiltScenario.build_actors) in a fixed declaration order pinned by
# the recorded goldens; see scenarios/base.py's pragma.

from __future__ import annotations

import re

import numpy as np

from repro.actors.behavior import AtTime, WhenActorGapBelow, WhenEgoGapBelow
from repro.actors.maneuvers import (
    Cruise,
    Follow,
    PaceBeside,
    SuddenBrake,
    TriggeredLaneChange,
)
from repro.actors.vehicle import Actor
from repro.dynamics.state import VehicleSpec
from repro.errors import ConfigurationError
from repro.road.track import Road, three_lane_curved_road, three_lane_straight_road
from repro.scenarios.base import BuiltScenario, ScenarioSpec, jittered
from repro.units import mph_to_mps

#: Ego start station on the straight road (m).
_EGO_START = 60.0


def _straight_road() -> Road:
    return three_lane_straight_road(length=2000.0)


def _curved_road() -> Road:
    return three_lane_curved_road(
        entry_length=150.0, radius=350.0, arc_length=1400.0, turn_left=False
    )


# ----------------------------------------------------------------------
# cut-out family
# ----------------------------------------------------------------------


def _cut_out_actors(
    road: Road,
    rng: np.random.Generator,
    ego_speed_mph: float,
    lead_gap: float | None = None,
    bail_out_gap: float | None = None,
    duration: float = 1.8,
    cruise_before: float = 2.5,
) -> list[Actor]:
    """Lead cuts out of the ego's lane, revealing a static obstacle.

    Two more actors pace the ego on both adjacent lanes, so hard braking
    is the ego's only option. The bail-out gap is chosen so the obstacle
    is revealed near-critically: at 40 mph the scenario is survivable
    only with a fast perception reaction (the paper's hardest MRF).
    The gap/maneuver keywords default to the Table 1 tuning; the fuzz
    families override them per genome (same draw order either way, so
    defaults reproduce the original choreography bit-exactly).
    """
    speed = mph_to_mps(ego_speed_mph)
    if lead_gap is None:
        lead_gap = 0.3 * speed + 20.0
    # Slightly tighter bail-out at low speed keeps the 20 mph variant's
    # demand above its MRF even in gently-driven high-FPR traces.
    if bail_out_gap is None:
        bail_out_gap = 22.0 if speed < 12.0 else 26.0
    lead_gap = jittered(rng, lead_gap, 0.05)
    bail_out_gap = jittered(rng, bail_out_gap, 0.05)
    obstacle_gap = lead_gap + bail_out_gap + speed * cruise_before
    lead = Actor(
        actor_id="lead",
        road=road,
        behavior=TriggeredLaneChange(
            trigger=WhenActorGapBelow(target_id="obstacle", gap=bail_out_gap),
            target_lane=0,
            duration=jittered(rng, duration, 0.08),
            then=Cruise(target_speed=speed),
        ),
        lane=1,
        station=_EGO_START + lead_gap,
        speed=speed,
    )
    obstacle = Actor(
        actor_id="obstacle",
        road=road,
        behavior=Cruise(target_speed=0.0),
        lane=1,
        station=_EGO_START + obstacle_gap,
        speed=0.0,
    )
    left_blocker = Actor(
        actor_id="left_blocker",
        road=road,
        behavior=Cruise(target_speed=speed),
        lane=2,
        station=_EGO_START + jittered(rng, 2.0, 0.3),
        speed=speed,
    )
    right_blocker = Actor(
        actor_id="right_blocker",
        road=road,
        behavior=Cruise(target_speed=speed),
        lane=0,
        station=_EGO_START - jittered(rng, 3.0, 0.3),
        speed=speed,
    )
    return [lead, obstacle, left_blocker, right_blocker]


# ----------------------------------------------------------------------
# cut-in family
# ----------------------------------------------------------------------


def _cut_in_actors(
    road: Road,
    rng: np.random.Generator,
    ego_speed_mph: float,
    actor_speed_mph: float,
    trigger_gap: float,
    start_gap: float,
    duration: float,
    with_left_blocker: bool,
    blocker_station_offset: float = -8.0,
    from_lane: int = 0,
    ego_lane: int = 1,
    ego_station: float = _EGO_START,
) -> list[Actor]:
    """An actor cuts into the ego's lane from an adjacent lane."""
    actor_speed = mph_to_mps(actor_speed_mph)
    ego_speed = mph_to_mps(ego_speed_mph)
    cutter = Actor(
        actor_id="cutter",
        road=road,
        behavior=TriggeredLaneChange(
            trigger=WhenEgoGapBelow(gap=jittered(rng, trigger_gap, 0.08)),
            target_lane=ego_lane,
            duration=jittered(rng, duration, 0.12),
            cruise_speed=actor_speed,
        ),
        lane=from_lane,
        station=ego_station + jittered(rng, start_gap, 0.08),
        speed=actor_speed,
    )
    actors = [cutter]
    if with_left_blocker:
        actors.append(
            Actor(
                actor_id="left_blocker",
                road=road,
                behavior=Cruise(target_speed=ego_speed),
                lane=2,
                station=ego_station + blocker_station_offset,
                speed=ego_speed,
            )
        )
    return actors


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------


SCENARIOS: dict[str, ScenarioSpec] = {}


def _register(spec: ScenarioSpec) -> None:
    if spec.name in SCENARIOS:
        raise ConfigurationError(f"duplicate scenario name {spec.name!r}")
    SCENARIOS[spec.name] = spec


_register(
    ScenarioSpec(
        name="cut_out",
        description=(
            "Front actor cuts out of the ego's lane revealing a static "
            "obstacle; adjacent lanes blocked."
        ),
        ego_speed_mph=20.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": True},
        paper_mrf="2",
        build_road=_straight_road,
        build_actors=lambda road, rng: _cut_out_actors(road, rng, 20.0),
        duration=35.0,
    )
)

_register(
    ScenarioSpec(
        name="cut_out_fast",
        description="Cut-out with the ego traveling at a higher speed.",
        ego_speed_mph=40.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": True},
        paper_mrf="6",
        build_road=_straight_road,
        build_actors=lambda road, rng: _cut_out_actors(road, rng, 40.0),
        duration=35.0,
    )
)

_register(
    ScenarioSpec(
        name="cut_in",
        description="An actor cuts in front of the ego at a safe distance.",
        ego_speed_mph=70.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": False, "left": False},
        paper_mrf="<1",
        build_road=_straight_road,
        build_actors=lambda road, rng: _cut_in_actors(
            road,
            rng,
            ego_speed_mph=70.0,
            actor_speed_mph=55.0,
            trigger_gap=55.0,
            start_gap=75.0,
            duration=3.0,
            with_left_blocker=False,
        ),
        duration=40.0,
    )
)

_register(
    ScenarioSpec(
        name="challenging_cut_in",
        description=(
            "An actor cuts in much closer to the ego; a left-lane actor "
            "leaves braking as the only option."
        ),
        ego_speed_mph=60.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": False},
        paper_mrf="3",
        build_road=_straight_road,
        build_actors=lambda road, rng: _cut_in_actors(
            road,
            rng,
            ego_speed_mph=60.0,
            actor_speed_mph=40.0,
            trigger_gap=26.0,
            start_gap=45.0,
            duration=2.2,
            with_left_blocker=True,
            blocker_station_offset=-9.0,
        ),
        duration=35.0,
    )
)

_register(
    ScenarioSpec(
        name="challenging_cut_in_curved",
        description="The challenging cut-in staged on a curved road.",
        ego_speed_mph=40.0,
        ego_lane=1,
        ego_station=40.0,
        activity={"front": True, "right": True, "left": True},
        paper_mrf="3",
        build_road=_curved_road,
        build_actors=lambda road, rng: _cut_in_actors(
            road,
            rng,
            ego_speed_mph=40.0,
            actor_speed_mph=26.0,
            trigger_gap=20.0,
            start_gap=38.0,
            duration=2.2,
            with_left_blocker=True,
            blocker_station_offset=-2.0,
            ego_station=40.0,
        ),
        duration=40.0,
    )
)


def _vehicle_following_actors(
    road: Road,
    rng: np.random.Generator,
    ego_speed_mph: float = 70.0,
    lead_gap: float = 50.0,
    brake_time: float = 4.0,
    decel: float = 3.0,
) -> list[Actor]:
    speed = mph_to_mps(ego_speed_mph)
    return [
        Actor(
            actor_id="lead",
            road=road,
            behavior=SuddenBrake(
                trigger=AtTime(time=jittered(rng, brake_time, 0.15)),
                decel=jittered(rng, decel, 0.1),
                cruise_speed=speed,
            ),
            lane=1,
            station=_EGO_START + jittered(rng, lead_gap, 0.04),
            speed=speed,
        )
    ]


_register(
    ScenarioSpec(
        name="vehicle_following",
        description=(
            "The ego follows a lead at 50 m on a highway; the lead "
            "suddenly brakes to a stop."
        ),
        ego_speed_mph=70.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": False, "left": False},
        paper_mrf="<1",
        build_road=_straight_road,
        build_actors=_vehicle_following_actors,
        duration=35.0,
    )
)


def _front_right_1_actors(road: Road, rng: np.random.Generator) -> list[Actor]:
    """Ego in the left lane; benign lane-change traffic around it."""
    speed = mph_to_mps(40.0)
    mover = Actor(
        actor_id="mover",
        road=road,
        behavior=TriggeredLaneChange(
            trigger=AtTime(time=jittered(rng, 3.0, 0.2)),
            target_lane=1,
            duration=jittered(rng, 3.0, 0.15),
            cruise_speed=speed,
        ),
        lane=0,
        station=_EGO_START + jittered(rng, 45.0, 0.1),
        speed=speed,
    )
    overtaker = Actor(
        actor_id="overtaker",
        road=road,
        behavior=TriggeredLaneChange(
            trigger=AtTime(time=jittered(rng, 4.0, 0.2)),
            target_lane=1,
            duration=jittered(rng, 3.0, 0.15),
            cruise_speed=mph_to_mps(45.0),
        ),
        lane=2,
        station=_EGO_START - jittered(rng, 32.0, 0.1),
        speed=mph_to_mps(45.0),
    )
    return [mover, overtaker]


_register(
    ScenarioSpec(
        name="front_right_activity_1",
        description=(
            "Ego in the left lane; an actor moves from the rightmost lane "
            "to the middle, another moves from behind the ego to the right."
        ),
        ego_speed_mph=40.0,
        ego_lane=2,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": False},
        paper_mrf="<1",
        build_road=_straight_road,
        build_actors=_front_right_1_actors,
        duration=30.0,
    )
)


def _front_right_2_actors(road: Road, rng: np.random.Generator) -> list[Actor]:
    """Front actor cuts out right then paces the ego; a follower behind."""
    speed = mph_to_mps(40.0)
    pacer = Actor(
        actor_id="pacer",
        road=road,
        behavior=TriggeredLaneChange(
            trigger=AtTime(time=jittered(rng, 2.5, 0.2)),
            target_lane=0,
            duration=jittered(rng, 2.8, 0.15),
            cruise_speed=speed,
            then=PaceBeside(station_offset=jittered(rng, 1.0, 0.5)),
        ),
        lane=1,
        station=_EGO_START + jittered(rng, 32.0, 0.1),
        speed=speed,
    )
    follower = Actor(
        actor_id="follower",
        road=road,
        behavior=Follow(lead_id=None),
        lane=1,
        station=_EGO_START - jittered(rng, 35.0, 0.1),
        speed=speed,
    )
    return [pacer, follower]


_register(
    ScenarioSpec(
        name="front_right_activity_2",
        description=(
            "Ego in the middle lane; the front actor cuts out to the "
            "rightmost lane and paces the ego side by side; another actor "
            "follows the ego."
        ),
        ego_speed_mph=40.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": False},
        paper_mrf="<1",
        build_road=_straight_road,
        build_actors=_front_right_2_actors,
        duration=30.0,
    )
)


_register(
    ScenarioSpec(
        name="front_right_activity_3",
        description=(
            "Ego in the middle lane; an actor from the rightmost lane cuts "
            "into the ego's lane ahead of it."
        ),
        ego_speed_mph=60.0,
        ego_lane=1,
        ego_station=_EGO_START,
        activity={"front": True, "right": True, "left": False},
        paper_mrf="<1",
        build_road=_straight_road,
        build_actors=lambda road, rng: _cut_in_actors(
            road,
            rng,
            ego_speed_mph=60.0,
            actor_speed_mph=45.0,
            trigger_gap=42.0,
            start_gap=60.0,
            duration=2.6,
            with_left_blocker=False,
        ),
        duration=35.0,
    )
)


#: Catalog keys in Table 1 order (the nine paper scenarios; expansions
#: registered later by :func:`speed_sweep` are not re-listed here).
SCENARIO_NAMES: tuple[str, ...] = tuple(SCENARIOS)

#: Ego speeds (mph) the default speed sweep derives variants at.
DEFAULT_SWEEP_SPEEDS: tuple[float, ...] = (20.0, 30.0, 40.0, 50.0, 60.0, 70.0)


def _cut_in_variant_actors(
    road: Road, rng: np.random.Generator, ego_speed_mph: float
) -> list[Actor]:
    """The cut-in choreography rescaled to an ego speed.

    Gaps shrink proportionally with speed (floored so low-speed variants
    stay physical) and the cutter runs 15 mph below the ego, mirroring
    the 70/55 mph baseline.
    """
    ratio = ego_speed_mph / 70.0
    return _cut_in_actors(
        road,
        rng,
        ego_speed_mph=ego_speed_mph,
        actor_speed_mph=max(ego_speed_mph - 15.0, 5.0),
        trigger_gap=max(55.0 * ratio, 15.0),
        start_gap=max(75.0 * ratio, 25.0),
        duration=3.0,
        with_left_blocker=False,
    )


def _vehicle_following_variant_actors(
    road: Road, rng: np.random.Generator, ego_speed_mph: float
) -> list[Actor]:
    """The vehicle-following choreography rescaled to an ego speed.

    The 50 m lead gap of the 70 mph baseline shrinks proportionally
    (floored so the low-speed variants still leave a following task),
    with the baseline's brake onset, deceleration and jitters.
    """
    speed = mph_to_mps(ego_speed_mph)
    ratio = ego_speed_mph / 70.0
    return [
        Actor(
            actor_id="lead",
            road=road,
            behavior=SuddenBrake(
                trigger=AtTime(time=jittered(rng, 4.0, 0.15)),
                decel=jittered(rng, 3.0, 0.1),
                cruise_speed=speed,
            ),
            lane=1,
            station=_EGO_START
            + jittered(rng, max(50.0 * ratio, 18.0), 0.04),
            speed=speed,
        )
    ]


#: Per-family ego-speed-variant builders and their Table 1 activity tags.
_SWEEP_FAMILIES: dict = {
    "cut_out": (
        _cut_out_actors,
        {"front": True, "right": True, "left": True},
    ),
    "cut_in": (
        _cut_in_variant_actors,
        {"front": True, "right": False, "left": False},
    ),
    "vehicle_following": (
        _vehicle_following_variant_actors,
        {"front": True, "right": False, "left": False},
    ),
}


def speed_sweep(
    speeds_mph: tuple[float, ...] = DEFAULT_SWEEP_SPEEDS,
    families: tuple[str, ...] = ("cut_out", "cut_in"),
) -> list[str]:
    """Register ego-speed variants of the sweepable families.

    Campaigns need a grid wider than the nine Table 1 rows; this derives
    ``<family>_<speed>mph`` scenarios (e.g. ``cut_out_50mph``,
    ``vehicle_following_40mph``) whose choreography rescales with the
    ego speed. Registration is idempotent — already-registered variants
    are simply returned again — so expanding the catalog twice (CLI
    plus a library caller, or a campaign reload) is safe.

    Returns the variant names, in (family, speed) order.
    """
    names: list[str] = []
    for family in families:
        if family not in _SWEEP_FAMILIES:
            raise ConfigurationError(
                f"unknown sweep family {family!r}; "
                f"choose from {sorted(_SWEEP_FAMILIES)}"
            )
        builder, activity = _SWEEP_FAMILIES[family]
        for speed in speeds_mph:
            if speed <= 0.0:
                raise ConfigurationError(
                    f"sweep speeds must be positive, got {speed:g}"
                )
            name = f"{family}_{speed:g}mph"
            names.append(name)
            if name in SCENARIOS:
                continue
            _register(
                ScenarioSpec(
                    name=name,
                    description=(
                        f"{family.replace('_', '-')} family at "
                        f"{speed:g} mph ego speed (speed-sweep variant)"
                    ),
                    ego_speed_mph=speed,
                    ego_lane=1,
                    ego_station=_EGO_START,
                    activity=dict(activity),
                    paper_mrf="-",
                    build_road=_straight_road,
                    build_actors=(
                        lambda road, rng, _b=builder, _s=speed: _b(road, rng, _s)
                    ),
                    duration=35.0,
                )
            )
    return names


#: Actor counts the default density sweep derives variants at.
DEFAULT_DENSITY_COUNTS: tuple[int, ...] = (2, 4, 8)

#: Base scenarios the density sweep can crowd with background traffic:
#: ``family -> (queue start gap, variant duration)``. The queue gap is
#: tuned per family so the approach sweeps the latency grid's middle —
#: a stopped actor binds between roughly 150 and 300 m at highway
#: speeds, and from ~20 m at urban speed — while staying past the base
#: event's reach (the vehicle-following lead brakes from 70 mph over
#: ~390 m; a nearer queue would be rear-ended through no perception
#: fault). Durations trim the post-stop tail, where a stationary ego
#: makes every actor trivially feasible.
_DENSITY_FAMILIES: dict = {
    "cut_out": (90.0, 18.0),
    "cut_in": (300.0, 22.0),
    "vehicle_following": (430.0, 20.0),
    # The curved cut-in's 40 mph ego reaches a 120 m queue on the arc in
    # ~10 s, well after the base cut-in event resolves; queued actors sit
    # past the straight entry, so every corridor mask and gate-table
    # query exercises the composite (straight+arc) Frenet kernel.
    "challenging_cut_in_curved": (120.0, 24.0),
}


def _background_actors(
    road: Road,
    rng: np.random.Generator,
    count: int,
    ego_speed: float,
    ego_lane: int,
    ego_station: float,
    queue_offset: float,
) -> list[Actor]:
    """``count`` background vehicles crowding the scene.

    Even indices form a stopped queue ahead in the ego's lane — a
    traffic jam past the base choreography. Each queued vehicle is a
    genuine in-corridor threat whose tolerable latency sits mid-grid
    while the ego approaches at speed (a stopped actor's distance
    budget never grows, unlike moving traffic, which resolves at
    ``l_max``), so the latency search has real work at every tick:
    these are the workloads the batched engine exists for. The queue
    starts ``queue_offset`` metres out — far enough that the nominal
    planner always stops in time. Odd indices cruise the adjacent lanes ahead and
    behind, loading the lateral threat gate instead. All placement is
    seeded jitter, so a density variant is as reproducible as its base
    scenario.
    """
    side_lanes = [lane for lane in (0, 1, 2) if lane != ego_lane]
    actors: list[Actor] = []
    for i in range(count):
        rank = i // 2
        if i % 2 == 0:
            lane = ego_lane
            station = (
                ego_station + queue_offset + jittered(rng, 30.0, 0.15) * rank
            )
            # Small (or negative) queue_offset genes must not place the
            # queue off the road start, mirroring the odd-branch clamp.
            station = max(station, 4.0)
            speed = 0.0
        else:
            lane = side_lanes[rank % len(side_lanes)]
            offset = jittered(rng, 22.0 + 18.0 * rank, 0.15)
            station = ego_station + (offset if rank % 2 == 0 else -offset)
            # Deep platoons behind a near-road-start ego stay on the road.
            station = max(station, 4.0)
            speed = ego_speed * (0.85 + 0.1 * (rank % 3))
        actors.append(
            Actor(
                actor_id=f"background_{i}",
                road=road,
                behavior=Cruise(target_speed=speed),
                lane=lane,
                station=station,
                speed=speed,
            )
        )
    return actors


def density_sweep(
    counts: tuple[int, ...] = DEFAULT_DENSITY_COUNTS,
    families: tuple[str, ...] = tuple(_DENSITY_FAMILIES),
) -> list[str]:
    """Register crowded variants of the Table 1 base scenarios.

    ``<family>_dense<N>`` (e.g. ``cut_in_dense4``) keeps the family's
    base choreography and adds ``N`` background vehicles — the
    multi-actor workloads the batched latency engine is built for: each
    extra in-lane actor is another full latency-grid solve per tick.
    Idempotent, like :func:`speed_sweep`.

    Returns the variant names, in (family, count) order.
    """
    names: list[str] = []
    for family in families:
        if family not in _DENSITY_FAMILIES:
            raise ConfigurationError(
                f"unknown density family {family!r}; "
                f"choose from {sorted(_DENSITY_FAMILIES)}"
            )
        base = SCENARIOS[family]
        for count in counts:
            if count < 1:
                raise ConfigurationError(
                    f"density counts must be positive, got {count}"
                )
            name = f"{family}_dense{count}"
            names.append(name)
            if name in SCENARIOS:
                continue

            def build(
                road: Road,
                rng: np.random.Generator,
                _base: ScenarioSpec = base,
                _count: int = count,
                _offset: float = _DENSITY_FAMILIES[family][0],
            ) -> list[Actor]:
                actors = _base.build_actors(road, rng)
                return actors + _background_actors(
                    road,
                    rng,
                    _count,
                    ego_speed=mph_to_mps(_base.ego_speed_mph),
                    ego_lane=_base.ego_lane,
                    ego_station=_base.ego_station,
                    queue_offset=_offset,
                )

            _register(
                ScenarioSpec(
                    name=name,
                    description=(
                        f"{family.replace('_', '-')} with {count} "
                        "background vehicle(s) (density-sweep variant)"
                    ),
                    ego_speed_mph=base.ego_speed_mph,
                    ego_lane=base.ego_lane,
                    ego_station=base.ego_station,
                    activity={"front": True, "right": True, "left": True},
                    paper_mrf="-",
                    build_road=base.build_road,
                    build_actors=build,
                    duration=_DENSITY_FAMILIES[family][1],
                )
            )
    return names


#: Shape of a speed-sweep variant name, e.g. ``cut_out_50mph``.
_SWEEP_NAME = re.compile(
    r"^(cut_out|cut_in|vehicle_following)_(\d+(?:\.\d+)?)mph$"
)

#: Shape of a density-sweep variant name, e.g. ``cut_in_dense4``.
_DENSITY_NAME = re.compile(
    r"^(challenging_cut_in_curved|cut_out|cut_in|vehicle_following)"
    r"_dense(\d+)$"
)

#: Shape of a fuzzed-variant name, e.g. ``fuzzed_cut_out_1a2b3c4d5e``.
_FUZZED_NAME = re.compile(r"^fuzzed_[a-z0-9_]+_[0-9a-f]{10}$")


def ensure_scenario(name: str) -> bool:
    """Make ``name`` registered, deriving sweep variants on demand.

    The registry is process-local mutable state: a worker process under
    a ``spawn`` start method, or a fresh process reloading a campaign
    JSONL, has not seen the parent's ``speed_sweep()`` /
    :func:`density_sweep` call. Any name matching a sweep pattern
    carries its own recipe, so it can be re-derived here instead of
    failing. Returns whether the name is registered afterwards.
    """
    if name in SCENARIOS:
        return True
    match = _SWEEP_NAME.match(name)
    if match is not None:
        speed_sweep(
            speeds_mph=(float(match.group(2)),), families=(match.group(1),)
        )
        return name in SCENARIOS
    match = _DENSITY_NAME.match(name)
    if match is not None:
        density_sweep(
            counts=(int(match.group(2)),), families=(match.group(1),)
        )
        return name in SCENARIOS
    if _FUZZED_NAME.match(name) is not None:
        # Unlike sweep names, a fuzzed digest name does not carry its own
        # recipe; resolution consults the in-process recipe table and the
        # REPRO_FUZZ_RECIPES archive (how spawn workers and campaign
        # reloads rebuild fuzzed genomes). Imported lazily: fuzzed.py
        # imports this module.
        from repro.scenarios.fuzzed import resolve_fuzzed

        return resolve_fuzzed(name)
    return False


def build_scenario(name: str, seed: int = 0) -> BuiltScenario:
    """Instantiate a catalog scenario with a jitter seed."""
    if not ensure_scenario(name):
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    return BuiltScenario(SCENARIOS[name], seed=seed)
