"""The ``repro lint`` command (also ``tools/reprolint.py``).

Exit codes (CI contract)::

    0   no findings (or none beyond the baseline)
    1   findings — the determinism/contract invariants are violated
    2   usage or configuration error (bad path, damaged baseline)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigurationError
from repro.lint.baseline import load_baseline, new_findings, write_baseline
from repro.lint.engine import lint_paths
from repro.lint.findings import render_findings
from repro.lint.rules import default_rules


def default_scan_root() -> Path:
    """The shipped ``repro`` package source tree."""
    return Path(__file__).resolve().parents[1]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared by ``repro lint`` and the tool)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or trees to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on ANY finding, ignoring the baseline (CI mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON; only findings beyond it fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the findings as JSON to this file (CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            layers = ",".join(rule.layers) if rule.layers else "all"
            print(f"{rule.id}  [{layers}]  {rule.title}")
        return 0
    paths = args.paths or [default_scan_root()]
    for path in paths:
        if not Path(path).exists():
            print(f"reprolint: no such path: {path}", file=sys.stderr)
            return 2
    findings = lint_paths(paths, rules)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"baseline written: {args.write_baseline} "
            f"({len(findings)} finding(s))"
        )
        return 0

    failing = findings
    if args.baseline is not None and not args.strict:
        try:
            failing = new_findings(findings, load_baseline(args.baseline))
        except ConfigurationError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2

    payload = {
        "kind": "reprolint-report",
        "strict": bool(args.strict),
        "findings": [f.to_dict() for f in findings],
        "new_findings": [f.to_dict() for f in failing],
    }
    if args.out is not None:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        if findings:
            print(render_findings(findings))
        suffix = ""
        if args.baseline is not None and not args.strict:
            suffix = f" ({len(failing)} beyond baseline)"
        print(f"reprolint: {len(findings)} finding(s){suffix}")
    return 1 if failing else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & contract linter for the Zhuyi "
            "reproduction (rules DET001-PAR006; see docs/TESTING.md)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via tools/
    sys.exit(main())
