"""The lint engine: discover, parse, check, suppress.

Deterministic end to end — files are visited in sorted order and
findings are reported sorted — so two runs over the same tree emit
byte-identical reports (the property that makes the committed baseline
and the CI diff meaningful).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.pragmas import UNPARSEABLE, parse_pragmas
from repro.lint.rules import Rule, default_rules


def iter_source_files(root: Path) -> Iterator[Path]:
    """Python files under ``root`` (or ``root`` itself), sorted."""
    root = Path(root)
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def package_relpath(path: Path) -> str:
    """``repro/…`` package-relative path for a real source file.

    Walks up to the outermost directory that still looks like package
    territory (contains ``__init__.py``), so ``src/repro/core/rng.py``
    maps to ``repro/core/rng.py`` wherever the tree is checked out.
    Files outside any package keep their name.
    """
    path = Path(path).resolve()
    parts = [path.name]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    return "/".join(reversed(parts))


def display_path(path: Path) -> str:
    """The path findings report: cwd-relative when possible."""
    path = Path(path).resolve()
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_module(
    module: ModuleContext, rules: Sequence[Rule]
) -> list[Finding]:
    """Run ``rules`` over one parsed module, applying its pragmas.

    Pragma-hygiene findings (LNT001/LNT002) are always included and
    never suppressible; rule findings are dropped where a justified
    pragma covers them.
    """
    known = [rule.id for rule in rules]
    suppressions = parse_pragmas(module.source, module.display, known)
    findings = list(suppressions.problems)
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            if not suppressions.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    relpath: str,
    rules: Sequence[Rule] | None = None,
    display: str | None = None,
) -> list[Finding]:
    """Lint source text as if it lived at ``relpath`` (fixture entry)."""
    if rules is None:
        rules = default_rules()
    try:
        module = ModuleContext(
            relpath=relpath, source=source, display=display or relpath
        )
    except SyntaxError as exc:
        return [
            Finding(
                path=display or relpath,
                line=exc.lineno or 1,
                rule=UNPARSEABLE,
                message=f"unparseable module: {exc.msg}",
            )
        ]
    return lint_module(module, rules)


def lint_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    relpath: str | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(
        path.read_text(),
        relpath or package_relpath(path),
        rules,
        display=display_path(path),
    )


def lint_paths(
    paths: Iterable[Path], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint files/trees; the findings of the whole run, sorted."""
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    for root in paths:
        for path in iter_source_files(Path(root)):
            findings.extend(lint_file(path, rules))
    return sorted(findings)
