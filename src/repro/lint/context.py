"""Per-module lint context: source, AST and package location.

Rules never touch the filesystem; they see one :class:`ModuleContext`
holding the parsed tree plus the module's *package-relative* path
(``repro/core/threat.py``), from which the layer (``core``, ``store``,
…) derives. Fixture tests exercise rules by constructing contexts with
synthetic relpaths, so a corpus file on disk can stand in for any
layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ModuleContext:
    """One parsed source module, as the rules see it.

    Attributes:
        relpath: package-relative posix path (``repro/batch/results.py``);
            the layer and per-rule module allowlists key off this.
        display: the path findings report (defaults to ``relpath``).
        source: full module source text.
        tree: the parsed ``ast`` module node.
    """

    relpath: str
    source: str
    display: str = ""
    tree: ast.Module = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.relpath = Path(self.relpath).as_posix()
        if not self.display:
            self.display = self.relpath
        if self.tree is None:
            self.tree = ast.parse(self.source, filename=self.display)

    @property
    def layer(self) -> str:
        """The architecture layer: first package segment under ``repro``.

        ``repro/core/rng.py`` → ``"core"``; top-level modules
        (``repro/units.py``) → ``""``. Paths outside a ``repro``
        package root fall back to their first directory segment.
        """
        parts = Path(self.relpath).parts
        if "repro" in parts:
            parts = parts[parts.index("repro") + 1 :]
        return parts[0] if len(parts) > 1 else ""

    @classmethod
    def from_file(
        cls, path: str | Path, relpath: str, display: str | None = None
    ) -> "ModuleContext":
        """Parse a real file (raises ``SyntaxError`` on bad source)."""
        source = Path(path).read_text()
        return cls(
            relpath=relpath,
            source=source,
            display=display or relpath,
        )
