"""PAR006 — backend selectors come from one canonical table.

``BACKENDS = ("scalar", "batched", "crosstrace")`` in
``repro.core.latency`` is the single declaration of the execution-
backend set. Everything that *accepts* a backend — argparse
``choices=``, constructor validation — must reference it, so that
adding a fourth backend is one edit, not a hunt for every hard-coded
tuple (and so no public selector quietly accepts only a subset).

What the rule flags:

* an argparse ``choices=`` keyword whose literal elements are backend
  names — even the full set: the table must be *referenced*, not
  copied;
* a ``not in`` validation of a backend-named value against a literal
  collection — validation against a subset silently rejects real
  backends, validation against a copied full set rots when the table
  grows;
* any literal collection equal to the full backend set outside the
  canonical module — a duplicate table.

What it deliberately allows: *positive* ``in`` dispatch over proper
subsets (``self.backend in ("batched", "crosstrace")`` routes the
array-program family and is not a claim about the full set), and
``==`` against a single name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import (
    Rule,
    dotted_name,
    literal_string_collection,
)

#: The backend vocabulary (mirrors repro.core.latency.BACKENDS).
# reprolint: disable=PAR006 -- the rule's own vocabulary mirror: the
# linter stays static and never imports the code it judges; the
# test suite pins this frozenset equal to the real BACKENDS.
BACKEND_VOCAB = frozenset({"scalar", "batched", "crosstrace"})

#: Where the canonical table lives; the one module allowed to spell
#: the full set out literally.
CANONICAL_MODULE = "repro/core/latency.py"
CANONICAL_NAME = "BACKENDS"


class BackendSelectorRule(Rule):
    """PAR006 — see module docstring."""

    id = "PAR006"
    title = "backend selectors reference the canonical BACKENDS table"

    def __init__(self, canonical_module: str = CANONICAL_MODULE):
        self.canonical_module = canonical_module

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.relpath == self.canonical_module:
            return
        flagged: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg != "choices":
                        continue
                    elements = literal_string_collection(keyword.value)
                    if (
                        elements
                        and len(elements & BACKEND_VOCAB) >= 2
                    ):
                        flagged.add(_pos(keyword.value))
                        yield self.finding(
                            module,
                            keyword.value,
                            "hard-coded backend choices "
                            f"{sorted(elements)}; use list(BACKENDS) "
                            "from repro.core.latency",
                        )
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if not isinstance(op, ast.NotIn):
                        continue
                    elements = literal_string_collection(comparator)
                    if not elements or not elements <= BACKEND_VOCAB:
                        continue
                    left = (dotted_name(node.left) or "").lower()
                    if "backend" in left or len(elements) >= 2:
                        flagged.add(_pos(comparator))
                        yield self.finding(
                            module,
                            node,
                            "backend validation against a literal "
                            f"{sorted(elements)}; validate with "
                            "`not in BACKENDS` "
                            "(repro.core.latency)",
                        )
        for node in ast.walk(module.tree):
            elements = literal_string_collection(node)
            if (
                elements == BACKEND_VOCAB
                and _pos(node) not in flagged
            ):
                yield self.finding(
                    module,
                    node,
                    "literal copy of the full backend table; import "
                    "BACKENDS from repro.core.latency instead",
                )


def _pos(node: ast.AST) -> tuple[int, int]:
    return (node.lineno, node.col_offset)
