"""IO005 — durability-critical modules write through ``repro.ioutil``.

``repro.store`` and ``repro.batch`` own the files whose torn or
half-published states the kill/resume and crash-durability test layers
exist to rule out. A bare ``open(path, "w")`` (or ``Path.write_text``)
can publish an empty or truncated file under its final name the moment
it is opened; the staged-fsync/atomic-rename helpers in
:mod:`repro.ioutil` cannot. This rule flags every truncating write in
those layers that does not go through the helpers.

Append mode (``"a"``) is allowed: appending to an existing stream is
the resume path's contract (header already durable, lines self-
delimiting, a torn tail is detected and dropped on load). Reads are
obviously fine. Staging writes whose target is only ever published by
a later rename may carry a justified line pragma — the rename *is*
the atomic pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import (
    Rule,
    dotted_name,
    string_literal,
    terminal_name,
)


def _write_mode(mode: str) -> bool:
    """Truncating/creating modes; ``a``/``r``/``r+`` are not flagged."""
    return any(flag in mode for flag in ("w", "x"))


class DurableWriteRule(Rule):
    """IO005 — see module docstring."""

    id = "IO005"
    title = "store/batch writes go through repro.ioutil staged helpers"
    layers = ("store", "batch")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = terminal_name(func)
            if name in ("write_text", "write_bytes") and isinstance(
                func, ast.Attribute
            ):
                yield self.finding(
                    module,
                    node,
                    f"bare `{name}` publishes a possibly-torn file "
                    "under its final name; use repro.ioutil."
                    "atomic_write_text (or stage + rename)",
                )
                continue
            if name != "open":
                continue
            if dotted_name(func) == "os.open":
                # fd-level open takes flag constants, not mode strings
                # (used by the fsync helpers themselves).
                continue
            # builtin open(path, mode): mode is the 2nd positional;
            # Path.open(mode): the 1st.
            mode_index = 1 if isinstance(func, ast.Name) else 0
            mode = None
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = string_literal(keyword.value)
            if mode is None and len(node.args) > mode_index:
                mode = string_literal(node.args[mode_index])
            if mode is None and len(node.args) > mode_index:
                # Non-literal mode: cannot prove it safe.
                mode = "w"
            if mode is not None and _write_mode(mode):
                yield self.finding(
                    module,
                    node,
                    f"bare open(mode={mode!r}) in a durability-"
                    "critical module; route the write through "
                    "repro.ioutil (fsynced_file / atomic_write_text / "
                    "atomic_create_stream)",
                )
