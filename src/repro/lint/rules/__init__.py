"""Rule base class, shared AST helpers, and the default rule set."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """One named, testable invariant checked over a module's AST.

    Subclasses set :attr:`id`/:attr:`title`, optionally restrict
    themselves to architecture layers via :attr:`layers`, and yield
    findings from :meth:`check`. Rules are stateless across modules —
    the engine may run them in any order over any file subset.
    """

    #: The rule id findings and pragmas name (e.g. ``"DET001"``).
    id: str = ""
    #: One-line statement of the invariant (shown by ``--list-rules``).
    title: str = ""
    #: Layers the rule applies to (:attr:`ModuleContext.layer` values);
    #: ``None`` means every module under ``src/``.
    layers: tuple[str, ...] | None = None

    def applies(self, module: ModuleContext) -> bool:
        return self.layers is None or module.layer in self.layers

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST | int, message: str
    ) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        return Finding(
            path=module.display, line=line, rule=self.id, message=message
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def string_literal(node: ast.AST) -> str | None:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def literal_string_collection(node: ast.AST) -> frozenset[str] | None:
    """Elements of an all-string List/Tuple/Set literal, else ``None``."""
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return None
    values = [string_literal(element) for element in node.elts]
    if not values or any(value is None for value in values):
        return None
    return frozenset(values)  # type: ignore[arg-type]


def default_rules() -> list[Rule]:
    """Fresh instances of the full rule set, in id order."""
    from repro.lint.rules.determinism import (
        FloatAccumulationRule,
        StatefulRandomRule,
        WallClockRule,
    )
    from repro.lint.rules.io import DurableWriteRule
    from repro.lint.rules.parallel import BackendSelectorRule
    from repro.lint.rules.rng import StreamRegistryRule

    return [
        StatefulRandomRule(),
        WallClockRule(),
        FloatAccumulationRule(),
        StreamRegistryRule(),
        DurableWriteRule(),
        BackendSelectorRule(),
    ]


def rule_ids(rules: Iterable[Rule] | None = None) -> list[str]:
    """Ids of ``rules`` (default: the full default set)."""
    return [rule.id for rule in (default_rules() if rules is None else rules)]


ALL_RULE_IDS = tuple(
    ("DET001", "DET002", "DET003", "RNG004", "IO005", "PAR006")
)
