"""DET001–DET003: the determinism rules.

These enforce the invariants PRs 3–9 pinned by parity testing: results
are pure functions of their inputs (no generator state, no wall
clock), and evaluation grids are closed-form (no accumulated floats).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import Rule, dotted_name


class StatefulRandomRule(Rule):
    """DET001 — no stateful RNG anywhere in ``src/``.

    Flags imports of the stdlib ``random`` module and any use of
    ``numpy.random`` (``default_rng``, ``Generator``, legacy global
    functions — all of them carry hidden state). Every draw must route
    through the counter functions of ``repro.core.rng``, whose values
    are pure functions of their keys; that is what makes draws
    independent of execution order, shard layout and worker count.

    The scenario-choreography legacy (seeded once per build, draws
    consumed in a fixed documented order) is pragma-allowlisted
    file-by-file with justification.
    """

    id = "DET001"
    title = (
        "no stateful RNG; draws route through repro.core.rng counters"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        numpy_random_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            module,
                            node,
                            "import of the stateful stdlib `random` "
                            "module; use repro.core.rng counter draws",
                        )
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    if alias.name == "numpy.random":
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                        # bare `import numpy.random` binds `numpy`,
                        # which the numpy_aliases chain check covers
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module,
                        node,
                        "import from the stateful stdlib `random` "
                        "module; use repro.core.rng counter draws",
                    )
                elif node.module == "numpy.random" or (
                    node.module == "numpy"
                    and any(a.name == "random" for a in node.names)
                ):
                    yield self.finding(
                        module,
                        node,
                        "import from numpy.random (stateful generator "
                        "API); use repro.core.rng counter draws",
                    )
        for node in ast.walk(module.tree):
            name = dotted_name(node) if isinstance(node, ast.Attribute) else None
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) >= 3
                and parts[0] in numpy_aliases
                and parts[1] == "random"
            ) or (
                len(parts) >= 2 and parts[0] in numpy_random_aliases
            ):
                yield self.finding(
                    module,
                    node,
                    f"stateful RNG use `{name}`; draws must be pure "
                    "functions of (seed, stream, keys) via "
                    "repro.core.rng",
                )


#: Wall-clock callables per module root.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


class WallClockRule(Rule):
    """DET002 — no wall-clock reads in deterministic layers.

    A result that folds in ``time.time()`` (or ``datetime.now()``)
    differs run to run by construction. Reporting-only timing —
    runner elapsed metadata, heartbeat sidecars — is allowlisted per
    module via ``disable-file`` pragmas whose justification states
    that no deterministic value derives from the clock.
    """

    id = "DET002"
    title = "no wall-clock reads; timing is reporting-only metadata"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        time_aliases: set[str] = set()
        datetime_mod_aliases: set[str] = set()
        datetime_cls_aliases: set[str] = set()
        from_imported: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    if alias.name == "datetime":
                        datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCS:
                            from_imported.add(alias.asname or alias.name)
                if node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_cls_aliases.add(
                                alias.asname or alias.name
                            )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            clock = None
            if (
                len(parts) == 2
                and parts[0] in time_aliases
                and parts[1] in _TIME_FUNCS
            ):
                clock = name
            elif (
                len(parts) == 3
                and parts[0] in datetime_mod_aliases
                and parts[1] in ("datetime", "date")
                and parts[2] in _DATETIME_FUNCS
            ):
                clock = name
            elif (
                len(parts) == 2
                and parts[0] in datetime_cls_aliases
                and parts[1] in _DATETIME_FUNCS
            ):
                clock = name
            elif len(parts) == 1 and parts[0] in from_imported:
                clock = name
            if clock is not None:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read `{clock}()`; deterministic layers "
                    "may not observe real time (allowlist reporting-"
                    "only modules with a justified disable-file pragma)",
                )


#: Loop variables that smell like simulation time / station.
_TIME_TARGETS = {"t", "time", "t0", "tick_time", "station"}
#: Increment operands that smell like grid steps.
_STEP_VALUES = {
    "dt",
    "dl",
    "ds",
    "step",
    "stride",
    "period",
    "sample_period",
    "sample_step",
    "gate_step",
    "time_step",
    "tick_period",
}


class FloatAccumulationRule(Rule):
    """DET003 — no float-accumulation time/station loops.

    ``t += dt`` inside a loop drifts: repeated float addition walks
    away from the closed-form grid ``start + i * dt``, so two engines
    walking "the same" instants disagree in the last bits — the exact
    bug PR 5 dug out of the predictors. Grids must be closed-form
    (``units.time_grid_count`` / ``start + arange(n) * step``).

    Heuristic: inside a ``for``/``while`` body, an augmented ``+=`` or
    ``-=`` whose target is a time/station-like name or whose increment
    mentions a step-like name. The two survivors in ``src/`` (the
    scalar-reference gate grids in ``core/threat.py``, the rounded
    latency ladder in ``core/parameters.py``) carry justified pragmas
    — they *are* the pinned reference semantics.
    """

    id = "DET003"
    title = "no accumulated float time/station grids; use closed form"
    layers = ("sim", "prediction", "core")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, in_loop: bool) -> None:
            if (
                in_loop
                and isinstance(node, ast.AugAssign)
                and isinstance(node.op, (ast.Add, ast.Sub))
            ):
                target = _terminal(node.target)
                step_like = any(
                    _terminal(sub) in _STEP_VALUES
                    for sub in ast.walk(node.value)
                )
                if target in _TIME_TARGETS or step_like:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"float accumulation `{target} += …` in a "
                            "loop drifts off the closed-form grid; "
                            "build grids as start + arange(n) * step "
                            "(units.time_grid_count)",
                        )
                    )
            inside = in_loop or isinstance(node, (ast.For, ast.While))
            for child in ast.iter_child_nodes(node):
                visit(child, inside)

        visit(module.tree, False)
        yield from findings


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
