"""RNG004 — stream-tag literals live in the central registry.

PR 9's ``seed + 7919`` collision showed how quietly two draw channels
can alias: nothing crashes, the draws are just correlated, and only a
statistical audit would notice. The registry in ``repro.core.rng``
(:func:`~repro.core.rng.register_stream`) makes channel identity a
reviewed, single-sourced fact; this rule makes sure nobody routes
around it:

* every string literal used as a stream/derivation tag — in
  ``counter_hash``/``counter_uniform``/``counter_normal`` stream
  position, in ``derive_seed`` key positions, or handed straight to
  ``stable_key`` — must be a registered tag;
* ``register_stream`` may only be called (with a literal) from
  ``repro/core/rng.py`` itself — a registration elsewhere would be a
  second source of truth;
* registered tags must map to pairwise-distinct key words (checked
  here statically with a pure-python FNV-1a mirror, and again at
  import time by ``register_stream`` itself).

The registry is read *statically* — the rule parses ``rng.py`` for
``register_stream("…")`` literals rather than importing it, so the
linter never executes the code it judges.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import Rule, string_literal, terminal_name

#: Package-relative location of the canonical registry.
REGISTRY_MODULE = "repro/core/rng.py"

#: Call sites whose *stream argument* (index 1) must be registered
#: when it is a string literal.
_STREAM_ARG_FUNCS = {"counter_hash", "counter_uniform", "counter_normal"}


def _fnv1a64(data: bytes) -> int:
    """Pure-python FNV-1a/64 — must match ``rng.stable_key`` on strings.

    Reimplemented (4 lines) instead of imported so the linter stays
    static; ``tests/lint`` pins bit-parity against the real
    ``stable_key``.
    """
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x00000100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def tag_word(tag: str) -> int:
    """The key word a string tag hashes to (mirrors ``stable_key``)."""
    return _fnv1a64(tag.encode("utf-8"))


def registered_tags_from_source(source: str) -> dict[str, int]:
    """Tag → source line of every ``register_stream("…")`` literal."""
    tags: dict[str, int] = {}
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if terminal_name(node.func) != "register_stream":
            continue
        if node.args:
            literal = string_literal(node.args[0])
            if literal is not None and literal not in tags:
                tags[literal] = node.lineno
    return tags


def default_registry_path() -> Path:
    """``repro/core/rng.py`` as shipped next to this package."""
    return Path(__file__).resolve().parents[2] / "core" / "rng.py"


def collect_stream_literals(
    module: ModuleContext,
) -> list[tuple[int, str, str]]:
    """Every (line, literal, call) stream/derivation tag use in a module.

    Shared with the registry unit tests, which assert the set of tags
    used anywhere in ``src/`` is a subset of the registered set.
    """
    uses: list[tuple[int, str, str]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = terminal_name(node.func)
        if func in _STREAM_ARG_FUNCS and len(node.args) >= 2:
            literal = string_literal(node.args[1])
            if literal is not None:
                uses.append((node.lineno, literal, func))
        elif func == "derive_seed":
            for arg in node.args[1:]:
                literal = string_literal(arg)
                if literal is not None:
                    uses.append((node.lineno, literal, func))
        elif func == "stable_key" and node.args:
            literal = string_literal(node.args[0])
            if literal is not None:
                uses.append((node.lineno, literal, func))
    return uses


class StreamRegistryRule(Rule):
    """RNG004 — see module docstring."""

    id = "RNG004"
    title = "stream tags are registered centrally and collision-free"

    def __init__(
        self,
        registry: dict[str, int] | None = None,
        registry_module: str = REGISTRY_MODULE,
    ):
        """
        Args:
            registry: tag → key word override for fixture tests;
                default parses the shipped ``repro/core/rng.py``.
            registry_module: relpath treated as the canonical registry
                location.
        """
        self._registry = registry
        self.registry_module = registry_module

    def registry(self) -> dict[str, int]:
        if self._registry is None:
            source = default_registry_path().read_text()
            self._registry = {
                tag: tag_word(tag)
                for tag in registered_tags_from_source(source)
            }
        return self._registry

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        registry = self.registry()
        if module.relpath == self.registry_module:
            yield from self._check_registry_module(module)
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and terminal_name(node.func) == "register_stream"
            ):
                yield self.finding(
                    module,
                    node,
                    "register_stream called outside the central "
                    f"registry ({self.registry_module}); stream tags "
                    "have exactly one source of truth",
                )
        for line, literal, func in collect_stream_literals(module):
            if literal not in registry:
                yield self.finding(
                    module,
                    line,
                    f"stream/derivation tag {literal!r} (via {func}) "
                    "is not registered; add register_stream("
                    f"{literal!r}) to repro.core.rng",
                )

    def _check_registry_module(
        self, module: ModuleContext
    ) -> Iterator[Finding]:
        """Inside rng.py: literals registered there must not collide."""
        tags = registered_tags_from_source(module.source)
        by_word: dict[int, str] = {}
        for tag, line in sorted(tags.items(), key=lambda kv: kv[1]):
            word = tag_word(tag)
            if word in by_word and by_word[word] != tag:
                yield self.finding(
                    module,
                    line,
                    f"stream tag {tag!r} collides with "
                    f"{by_word[word]!r}: both hash to key word "
                    f"{word:#018x}",
                )
            else:
                by_word[word] = tag
