"""Findings: what a lint rule reports, and how it renders.

A finding is a plain value — ``(path, line, rule, message)`` — ordered
so reports and baselines are deterministic regardless of rule
execution order (the same order-independence discipline the rest of
the codebase applies to its numerics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: display path of the offending file (repo-relative where
            possible, so CI logs and editors agree).
        line: 1-based source line.
        rule: the rule id (``DET001`` … ``PAR006``, or ``LNT00x`` for
            lint-hygiene problems such as unjustified pragmas).
        message: human-readable statement of the violated contract.
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line report form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )

    def key(self) -> tuple[str, str, str]:
        """Line-insensitive identity, used for baseline comparison.

        Unrelated edits shift line numbers; a baseline entry keeps
        matching the finding it recorded as long as the file, rule and
        message are unchanged.
        """
        return (self.path, self.rule, self.message)


def render_findings(findings: Iterable[Finding]) -> str:
    """All findings, one canonical line each, sorted."""
    return "\n".join(f.render() for f in sorted(findings))
