"""Pragma suppressions: explicit, scoped, and always justified.

Two forms, parsed from comments (via ``tokenize``, so strings that
merely *mention* pragmas don't count):

* ``# reprolint: disable=DET003 -- why this exception is sound``
  suppresses the named rule(s) on its own line — or, when the comment
  stands alone on a line, on the next code line (for statements that
  would blow the line length with an inline pragma).
* ``# reprolint: disable-file=DET002 -- why`` suppresses the rule(s)
  for the whole module (the allowlist mechanism: e.g. the heartbeat
  module's wall-clock reads).

The ``--`` justification is mandatory: a pragma without one is not a
suppression, it is an **LNT001 finding** — so every exception in the
tree carries its own written rationale, reviewable in place. Unknown
rule ids are LNT002 (a typo would otherwise silently suppress
nothing). These hygiene findings are themselves unsuppressible.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.findings import Finding

#: Rule ids for pragma hygiene problems (never suppressible).
MALFORMED_PRAGMA = "LNT001"
UNKNOWN_RULE = "LNT002"
UNPARSEABLE = "LNT003"

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Suppressions:
    """Parsed pragma state for one module."""

    #: rules suppressed module-wide.
    file_rules: set[str] = field(default_factory=set)
    #: line → rules suppressed on that line.
    line_rules: dict[int, set[str]] = field(default_factory=dict)
    #: pragma-hygiene findings (malformed / unknown-rule pragmas).
    problems: list[Finding] = field(default_factory=list)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is suppressed."""
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, set())


def parse_pragmas(
    source: str, display: str, known_rules: Iterable[str]
) -> Suppressions:
    """Collect this module's pragma suppressions and hygiene findings.

    Args:
        source: module source text.
        display: path used in hygiene findings.
        known_rules: valid rule ids; anything else in a pragma is
            LNT002.
    """
    known = set(known_rules)
    result = Suppressions()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError):
        # The engine reports unparseable modules (LNT003); comments of
        # a file that cannot tokenize suppress nothing.
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if "reprolint" not in token.string:
            continue
        line_no = token.start[0]
        match = _PRAGMA.match(token.string.strip())
        if match is None or not match.group("why"):
            result.problems.append(
                Finding(
                    path=display,
                    line=line_no,
                    rule=MALFORMED_PRAGMA,
                    message=(
                        "malformed or unjustified reprolint pragma; the "
                        "form is `# reprolint: disable[-file]=RULE -- "
                        "justification` and the justification is "
                        "mandatory"
                    ),
                )
            )
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        rules.discard("")
        unknown = sorted(rules - known)
        if unknown:
            result.problems.append(
                Finding(
                    path=display,
                    line=line_no,
                    rule=UNKNOWN_RULE,
                    message=(
                        f"pragma names unknown rule(s) {unknown}; it "
                        "would suppress nothing"
                    ),
                )
            )
            rules &= known
        if not rules:
            continue
        if match.group("scope") == "disable-file":
            result.file_rules |= rules
        else:
            scope_line = line_no
            # A standalone pragma comment guards the next code line.
            text = token.line[: token.start[1]]
            if not text.strip():
                scope_line = _next_code_line(tokens, line_no)
            result.line_rules.setdefault(scope_line, set()).update(rules)
            # Multi-line statements report their first line; an inline
            # pragma on a continuation line still has to reach it, so
            # pragmas also cover the line they sit on.
            if scope_line != line_no:
                result.line_rules.setdefault(line_no, set()).update(rules)
    return result


def _next_code_line(tokens: list, after: int) -> int:
    """First line after ``after`` holding a non-comment token."""
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
    }
    for token in tokens:
        if token.start[0] > after and token.type not in skip:
            return token.start[0]
    return after
