"""The committed findings baseline.

The repo ships a **zero-findings** baseline
(``tools/reprolint_baseline.json``): every invariant violation is
either fixed or carries a justified pragma, and CI fails on any *new*
finding. The baseline format still records full findings so that, if a
future rule lands with violations that cannot be fixed in the same PR,
the debt is explicit, diffable and burns down visibly — never a
silently growing ignore list.

Baseline comparison is line-insensitive (:meth:`Finding.key`):
unrelated edits shift line numbers without un-baselining anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.lint.findings import Finding

BASELINE_SCHEMA = 1


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable JSON)."""
    payload = {
        "kind": "reprolint-baseline",
        "schema": BASELINE_SCHEMA,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str | Path) -> list[Finding]:
    """Load a baseline file (raises ``ConfigurationError`` on damage)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable baseline {path}: {exc}")
    if payload.get("kind") != "reprolint-baseline":
        raise ConfigurationError(f"{path} is not a reprolint baseline")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"baseline schema {payload.get('schema')!r} unsupported "
            f"(expected {BASELINE_SCHEMA})"
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]


def new_findings(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> list[Finding]:
    """Findings not covered by the baseline (line-insensitive)."""
    known = {f.key() for f in baseline}
    return [f for f in findings if f.key() not in known]
