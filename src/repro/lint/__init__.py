"""reprolint — the determinism & contract linter.

Every layer of this reproduction is pinned bit-identical across
backends, workers, shards and resume, but until now those invariants
lived only in parity tests that fire *after* a violation ships. This
package enforces the written contracts structurally, as named
AST-based rules over ``src/``:

========  ==========================================================
DET001    no stateful RNG — draws route through ``repro.core.rng``
DET002    no wall-clock reads in deterministic layers
DET003    no float-accumulation time/station loops (``t += dt``)
RNG004    every stream-tag literal is centrally registered, no
          key-word collisions
IO005     durability-critical modules write through ``repro.ioutil``
PAR006    backend selectors come from the canonical ``BACKENDS`` table
========  ==========================================================

Suppression is explicit and audited: ``# reprolint: disable=RULE --
justification`` on (or directly above) the offending line, or
``# reprolint: disable-file=RULE -- justification`` for a whole
module; a pragma without a written justification is itself a finding
(LNT001). Run via ``repro lint`` or ``tools/reprolint.py``; CI runs
``--strict`` against a committed zero-findings baseline.
"""

from repro.lint.baseline import (
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.lint.engine import (
    iter_source_files,
    lint_file,
    lint_module,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.context import ModuleContext
from repro.lint.rules import ALL_RULE_IDS, Rule, default_rules

__all__ = [
    "ALL_RULE_IDS",
    "Finding",
    "ModuleContext",
    "Rule",
    "default_rules",
    "iter_source_files",
    "lint_file",
    "lint_module",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "new_findings",
    "write_baseline",
]
