"""Angular sectors modelling camera fields of view.

Equation 5 of the paper groups actors by "the camera's field of view";
with a top-view state representation a camera FOV is a circular sector:
a mounting bearing, an opening angle and a maximum range.

Membership is formulated without per-point transcendentals so that the
scalar test and :meth:`AngularSector.contains_local_batch` are
*bit-identical by construction*: the only per-point operations are
multiply, add, compare and a correctly-rounded square root — operations
on which numpy and the scalar ``math`` module agree to the last bit —
while every trigonometric quantity (the sector's edge cosine and the
rotation constants) is computed once per sector with ``math`` and shared
verbatim by both paths. The trace-level visibility kernel
(:meth:`repro.perception.sensor.CameraRig.visible_actors_trace`) leans
on this contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import GeometryError
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2

#: Angular slack added to the sector edge so boundary actors (an actor
#: exactly on the 60-degree edge of a 120-degree camera) count as seen.
_EDGE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class AngularSector:
    """A camera FOV: sector centred on ``center_bearing`` in a body frame.

    Attributes:
        center_bearing: direction of the sector centre relative to the body
            frame's +X axis (radians; 0 = forward, +pi/2 = left).
        opening_angle: full opening angle of the sector (radians).
        max_range: maximum sensing distance (metres).
    """

    center_bearing: float
    opening_angle: float
    max_range: float

    def __post_init__(self) -> None:
        if not 0.0 < self.opening_angle <= 2.0 * 3.141592653589794:
            raise GeometryError(
                f"opening angle must be in (0, 2*pi], got {self.opening_angle}"
            )
        if self.max_range <= 0.0:
            raise GeometryError(f"max range must be positive, got {self.max_range}")

    @cached_property
    def _range_sq(self) -> float:
        """Squared range; membership compares squared distances."""
        return self.max_range * self.max_range

    @cached_property
    def _rotation(self) -> tuple[float, float]:
        """``(cos, sin)`` of the rotation by ``-center_bearing``.

        The same constants :meth:`repro.geometry.vec.Vec2.rotated` would
        derive; computed once so the scalar and batch tests share them.
        """
        return math.cos(-self.center_bearing), math.sin(-self.center_bearing)

    @cached_property
    def _cos_edge(self) -> float | None:
        """Cosine of the (tolerance-padded) half-opening, or ``None``.

        A point at bearing offset ``a`` from the sector centre is inside
        iff ``|a| <= edge``, which for ``edge < pi`` is equivalent to
        ``cos(a) >= cos(edge)`` — an inequality evaluable per point from
        coordinates alone (no arctangent). ``None`` flags ``edge >= pi``:
        every bearing is inside (a full-circle sector).
        """
        edge = self.opening_angle / 2.0 + _EDGE_TOLERANCE
        if edge >= math.pi:
            return None
        return math.cos(edge)

    def contains_local(self, point: Vec2) -> bool:
        """Whether a body-frame point falls inside the sector."""
        d2 = point.x * point.x + point.y * point.y
        if d2 > self._range_sq:
            return False
        if d2 == 0.0:
            return True
        cos_edge = self._cos_edge
        if cos_edge is None:
            return True
        c, s = self._rotation
        # The point rotated so the sector centre is the +X axis; its
        # bearing offset a then satisfies cos(a) = u / |point|.
        u = c * point.x - s * point.y
        return u >= math.sqrt(d2) * cos_edge

    def contains_local_batch(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains_local` over body-frame coordinates.

        Bit-identical to the scalar test per element: both sides perform
        the same multiplies, the same correctly-rounded square root and
        the same comparisons against the same shared constants.

        Args:
            xs / ys: body-frame coordinates, any matching shape.

        Returns:
            Boolean membership array of the same shape.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        d2 = xs * xs + ys * ys
        inside = d2 <= self._range_sq
        cos_edge = self._cos_edge
        if cos_edge is not None:
            c, s = self._rotation
            u = c * xs - s * ys
            inside &= (u >= np.sqrt(d2) * cos_edge) | (d2 == 0.0)
        return inside

    def contains(self, body: Frame2, point: Vec2) -> bool:
        """Whether a world point falls in the sector mounted on ``body``."""
        return self.contains_local(body.to_local(point))
