"""Angular sectors modelling camera fields of view.

Equation 5 of the paper groups actors by "the camera's field of view";
with a top-view state representation a camera FOV is a circular sector:
a mounting bearing, an opening angle and a maximum range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.transforms import Frame2
from repro.geometry.vec import Vec2
from repro.units import wrap_angle


@dataclass(frozen=True)
class AngularSector:
    """A camera FOV: sector centred on ``center_bearing`` in a body frame.

    Attributes:
        center_bearing: direction of the sector centre relative to the body
            frame's +X axis (radians; 0 = forward, +pi/2 = left).
        opening_angle: full opening angle of the sector (radians).
        max_range: maximum sensing distance (metres).
    """

    center_bearing: float
    opening_angle: float
    max_range: float

    def __post_init__(self) -> None:
        if not 0.0 < self.opening_angle <= 2.0 * 3.141592653589794:
            raise GeometryError(
                f"opening angle must be in (0, 2*pi], got {self.opening_angle}"
            )
        if self.max_range <= 0.0:
            raise GeometryError(f"max range must be positive, got {self.max_range}")

    def contains_local(self, point: Vec2) -> bool:
        """Whether a body-frame point falls inside the sector."""
        distance = point.norm()
        if distance > self.max_range:
            return False
        if distance == 0.0:
            return True
        bearing = point.angle()
        offset = abs(wrap_angle(bearing - self.center_bearing))
        return offset <= self.opening_angle / 2.0 + 1e-12

    def contains(self, body: Frame2, point: Vec2) -> bool:
        """Whether a world point falls in the sector mounted on ``body``."""
        return self.contains_local(body.to_local(point))
