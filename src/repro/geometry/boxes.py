"""Oriented bounding boxes and overlap tests.

Vehicles are modelled as rectangles in the top view. Collision detection
("safety" in the paper means no collision between ego and actors) uses the
separating-axis theorem (SAT) on the two boxes' edge normals, which is
exact for convex polygons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.vec import Vec2

#: Below this ray-direction magnitude a slab axis counts as parallel.
#: Shared with the vectorized occlusion test
#: (:func:`repro.perception.detection.occlusion_mask`), whose bit-parity
#: with :func:`segment_intersects_box` depends on using the same value.
PARALLEL_EPS = 1e-12


@dataclass(frozen=True)
class OrientedBox:
    """A rectangle centred at ``center`` with ``heading`` along its length.

    Attributes:
        center: centre of the rectangle, world frame (metres).
        heading: orientation of the length axis (radians).
        length: extent along the heading axis (metres).
        width: extent across the heading axis (metres).
    """

    center: Vec2
    heading: float
    length: float
    width: float

    def __post_init__(self) -> None:
        if self.length <= 0.0 or self.width <= 0.0:
            raise GeometryError(
                f"box dimensions must be positive, got "
                f"length={self.length}, width={self.width}"
            )

    def corners(self) -> list[Vec2]:
        """The four corners in counter-clockwise order."""
        forward = Vec2.unit(self.heading) * (self.length / 2.0)
        left = Vec2.unit(self.heading).perp() * (self.width / 2.0)
        return [
            self.center + forward + left,
            self.center - forward + left,
            self.center - forward - left,
            self.center + forward - left,
        ]

    def axes(self) -> tuple[Vec2, Vec2]:
        """The two unit edge normals (length axis and width axis)."""
        forward = Vec2.unit(self.heading)
        return forward, forward.perp()

    def half_extents(self) -> tuple[float, float]:
        """Half-length and half-width."""
        return self.length / 2.0, self.width / 2.0

    def contains_point(self, point: Vec2) -> bool:
        """Whether a world point lies inside (or on) the box."""
        delta = point - self.center
        forward, left = self.axes()
        half_len, half_wid = self.half_extents()
        return (
            abs(delta.dot(forward)) <= half_len + 1e-12
            and abs(delta.dot(left)) <= half_wid + 1e-12
        )

    def circumradius(self) -> float:
        """Radius of the smallest circle containing the box."""
        return math.hypot(self.length / 2.0, self.width / 2.0)


def _projection_interval(box: OrientedBox, axis: Vec2) -> tuple[float, float]:
    """Project a box onto a unit axis; returns the (min, max) interval."""
    center = box.center.dot(axis)
    forward, left = box.axes()
    half_len, half_wid = box.half_extents()
    radius = abs(forward.dot(axis)) * half_len + abs(left.dot(axis)) * half_wid
    return center - radius, center + radius


def boxes_overlap(a: OrientedBox, b: OrientedBox) -> bool:
    """Exact overlap test between two oriented boxes (SAT).

    Runs a cheap bounding-circle rejection first, since in a driving
    scenario almost all pairs are far apart almost all the time.
    """
    max_gap = a.circumradius() + b.circumradius()
    if a.center.distance_to(b.center) > max_gap:
        return False
    for axis in (*a.axes(), *b.axes()):
        a_min, a_max = _projection_interval(a, axis)
        b_min, b_max = _projection_interval(b, axis)
        if a_max < b_min or b_max < a_min:
            return False
    return True


def box_distance(a: OrientedBox, b: OrientedBox) -> float:
    """Approximate clearance between two boxes (0 when overlapping).

    Exact corner-to-edge distance is unnecessary for this library; the
    simulator uses :func:`boxes_overlap` for collision and this helper only
    for diagnostics, so a corner/edge sampling approximation suffices.
    """
    if boxes_overlap(a, b):
        return 0.0
    best = math.inf
    a_pts = a.corners() + [a.center]
    b_pts = b.corners() + [b.center]
    for pa in a_pts:
        for pb in b_pts:
            best = min(best, pa.distance_to(pb))
    for pa in a.corners():
        for qa, qb in _edges(b):
            best = min(best, _point_segment_distance(pa, qa, qb))
    for pb in b.corners():
        for qa, qb in _edges(a):
            best = min(best, _point_segment_distance(pb, qa, qb))
    return best


def segment_intersects_box(a: Vec2, b: Vec2, box: OrientedBox) -> bool:
    """Exact segment-vs-oriented-box intersection (slab method).

    Used by the occlusion model: a sight ray is blocked when the segment
    from the camera to the target crosses another vehicle's footprint.
    """
    # Work in the box's local frame where it is axis-aligned.
    forward, left = box.axes()
    half_len, half_wid = box.half_extents()
    delta_a = a - box.center
    delta_b = b - box.center
    local_a = Vec2(delta_a.dot(forward), delta_a.dot(left))
    local_b = Vec2(delta_b.dot(forward), delta_b.dot(left))

    direction = local_b - local_a
    t_min, t_max = 0.0, 1.0
    for start, d, half in (
        (local_a.x, direction.x, half_len),
        (local_a.y, direction.y, half_wid),
    ):
        if abs(d) < PARALLEL_EPS:
            if abs(start) > half:
                return False
            continue
        t1 = (-half - start) / d
        t2 = (half - start) / d
        if t1 > t2:
            t1, t2 = t2, t1
        t_min = max(t_min, t1)
        t_max = min(t_max, t2)
        if t_min > t_max:
            return False
    return True


def _edges(box: OrientedBox) -> list[tuple[Vec2, Vec2]]:
    pts = box.corners()
    return [(pts[i], pts[(i + 1) % 4]) for i in range(4)]


def _point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    seg = b - a
    seg_len_sq = seg.norm_sq()
    if seg_len_sq == 0.0:
        return p.distance_to(a)
    t = max(0.0, min(1.0, (p - a).dot(seg) / seg_len_sq))
    closest = a + seg * t
    return p.distance_to(closest)
