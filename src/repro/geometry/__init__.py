"""2-D geometry substrate: vectors, frames, oriented boxes and FOV sectors.

The Zhuyi paper works in a 2-D top view ("world reference frame" with X
longitudinal and Y lateral of the ego, Figure 2). Everything geometric in
this reproduction — road layout, vehicle footprints, collision checks and
camera fields of view — is built from these primitives.
"""

from repro.geometry.vec import Vec2
from repro.geometry.transforms import Frame2
from repro.geometry.boxes import (
    OrientedBox,
    box_distance,
    boxes_overlap,
    segment_intersects_box,
)
from repro.geometry.fov import AngularSector

__all__ = [
    "Vec2",
    "Frame2",
    "OrientedBox",
    "boxes_overlap",
    "box_distance",
    "segment_intersects_box",
    "AngularSector",
]
