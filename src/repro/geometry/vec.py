"""Immutable 2-D vector used throughout the library.

A tiny hand-rolled value type is used instead of raw numpy arrays for
single points: it is hashable, self-documenting (``.x``/``.y``) and cheap
for the scalar-heavy kinematics code. Bulk math (grids, sweeps) uses numpy
directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Vec2:
    """A point or direction in the 2-D plane, in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """2-D cross product (z component of the 3-D cross product)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt when comparing)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: if the vector has zero length.
        """
        length = self.norm()
        if length == 0.0:
            raise ZeroDivisionError("cannot normalize a zero-length Vec2")
        return Vec2(self.x / length, self.y / length)

    def perp(self) -> "Vec2":
        """The vector rotated +90 degrees (counter-clockwise normal)."""
        return Vec2(-self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """The vector rotated by ``angle`` radians counter-clockwise."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def angle(self) -> float:
        """Heading of the vector in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates (radians)."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def unit(angle: float) -> "Vec2":
        """Unit vector at the given heading (radians)."""
        return Vec2(math.cos(angle), math.sin(angle))

    def as_tuple(self) -> tuple[float, float]:
        """The vector as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)
