"""Rigid 2-D frames (SE(2)) for world <-> body coordinate changes.

The perception substrate expresses actor positions in each camera's frame
to test FOV membership, and the Zhuyi threat extraction expresses actor
motion in the ego's path frame. Both are plain SE(2) transforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Vec2
from repro.units import wrap_angle


@dataclass(frozen=True)
class Frame2:
    """A rigid frame: ``origin`` and ``heading`` of the frame's +X axis.

    ``to_local`` maps world points into this frame; ``to_world`` maps
    frame-local points back. The two are exact inverses.
    """

    origin: Vec2
    heading: float

    def to_local(self, point: Vec2) -> Vec2:
        """Express a world-frame point in this frame."""
        delta = point - self.origin
        return delta.rotated(-self.heading)

    def to_local_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_local` over world coordinates.

        Bit-identical per element to the scalar path: the rotation
        constants come from the same ``math`` calls
        :meth:`repro.geometry.vec.Vec2.rotated` makes, and the per-point
        work is plain multiply/add. The perception batch kernels
        (detection FOV pre-filtering, trace-level visibility) rely on
        this equivalence.
        """
        c = math.cos(-self.heading)
        s = math.sin(-self.heading)
        dx = np.asarray(xs, dtype=float) - self.origin.x
        dy = np.asarray(ys, dtype=float) - self.origin.y
        return c * dx - s * dy, s * dx + c * dy

    def to_world(self, point: Vec2) -> Vec2:
        """Express a frame-local point in the world frame."""
        return self.origin + point.rotated(self.heading)

    def direction_to_local(self, direction: Vec2) -> Vec2:
        """Rotate a world-frame direction into this frame (no translation)."""
        return direction.rotated(-self.heading)

    def direction_to_world(self, direction: Vec2) -> Vec2:
        """Rotate a frame-local direction into the world frame."""
        return direction.rotated(self.heading)

    def heading_to_local(self, world_heading: float) -> float:
        """Express a world heading (radians) relative to this frame."""
        return wrap_angle(world_heading - self.heading)

    def bearing_of(self, point: Vec2) -> float:
        """Bearing (radians) of a world point as seen from this frame.

        Zero bearing is straight ahead along the frame's +X axis; positive
        bearings are to the left (counter-clockwise).
        """
        local = self.to_local(point)
        return math.atan2(local.y, local.x)

    def compose(self, child: "Frame2") -> "Frame2":
        """The frame obtained by mounting ``child`` inside this frame.

        ``child`` is expressed in this frame's coordinates; the result is
        expressed in world coordinates. Used to mount cameras on the ego.
        """
        return Frame2(
            origin=self.to_world(child.origin),
            heading=wrap_angle(self.heading + child.heading),
        )

    @staticmethod
    def identity() -> "Frame2":
        """The world frame itself."""
        return Frame2(Vec2(0.0, 0.0), 0.0)
