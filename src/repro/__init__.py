"""Reproduction of *Zhuyi: Perception Processing Rate Estimation for
Safety in Autonomous Vehicles* (Hsiao et al., DAC 2022).

Zhuyi continuously estimates, per camera, the minimum frame processing
rate (FPR) an autonomous vehicle needs to stay collision-free. This
package provides:

* ``repro.core`` — the Zhuyi model itself (tolerable-latency search,
  trajectory aggregation, per-camera FPR, offline/online estimators).
* ``repro.system`` — the Zhuyi-based AV system of Section 3 (safety
  check, work prioritization, MRF search).
* substrates replacing the paper's closed-source infrastructure:
  ``geometry``, ``road``, ``dynamics``, ``actors``, ``perception``,
  ``prediction``, ``planning``, ``sim`` and the ``scenarios`` catalog.
* ``repro.analysis`` — harnesses regenerating every table and figure.

Quickstart::

    from repro import build_scenario, OfflineEvaluator

    scenario = build_scenario("cut_in", seed=0)
    trace = scenario.run(fpr=30.0)
    series = OfflineEvaluator(road=scenario.road).evaluate(trace)
    print(series.max_fpr("front_120"), series.fraction_of_provision())
"""

from repro.core import (
    ComputeDemandModel,
    EvaluationSeries,
    EvaluationTick,
    LatencyResult,
    LatencySearch,
    MaxAggregator,
    MeanAggregator,
    OfflineEvaluator,
    OnlineEstimator,
    PercentileAggregator,
    SearchStrategy,
    ZhuyiParams,
)
from repro.scenarios import SCENARIO_NAMES, BuiltScenario, build_scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ZhuyiParams",
    "LatencySearch",
    "LatencyResult",
    "SearchStrategy",
    "MaxAggregator",
    "MeanAggregator",
    "PercentileAggregator",
    "OfflineEvaluator",
    "OnlineEstimator",
    "EvaluationSeries",
    "EvaluationTick",
    "ComputeDemandModel",
    "build_scenario",
    "BuiltScenario",
    "SCENARIO_NAMES",
]
