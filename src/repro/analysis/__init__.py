"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`repro.analysis.throughput` — Figure 1 (TOPS demand vs SoCs).
* :mod:`repro.analysis.table1` — Table 1 (validation across scenarios).
* :mod:`repro.analysis.figures` — Figures 4-7 (latency series over time).
* :mod:`repro.analysis.sensitivity` — Figure 8 (velocity sweeps).
* :mod:`repro.analysis.report` — ASCII tables, heatmaps and series.
"""

from repro.analysis.throughput import (
    PERCEPTION_MODELS,
    SOC_CATALOG,
    PerceptionModel,
    SoC,
    ThroughputModel,
)
from repro.analysis.table1 import (
    Table1Config,
    Table1Row,
    generate_table1,
    render_table1,
)
from repro.analysis.figures import (
    FigureSeries,
    decel_correlation,
    offline_figure_series,
    online_figure_series,
)
from repro.analysis.sensitivity import SensitivityGrid, sweep_min_fpr
from repro.analysis.report import (
    format_table,
    pearson_correlation,
    render_heatmap,
    render_series,
)

__all__ = [
    "PerceptionModel",
    "SoC",
    "ThroughputModel",
    "PERCEPTION_MODELS",
    "SOC_CATALOG",
    "Table1Config",
    "Table1Row",
    "generate_table1",
    "render_table1",
    "FigureSeries",
    "offline_figure_series",
    "online_figure_series",
    "decel_correlation",
    "SensitivityGrid",
    "sweep_min_fpr",
    "format_table",
    "render_heatmap",
    "render_series",
    "pearson_correlation",
]
