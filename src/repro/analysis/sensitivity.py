"""Figure 8 — estimated minimum FPR over (v_e0, v_an) at fixed s_n.

"We sweep v_e0 and v_an by fixing s_n, the distance the ego can travel
between time t0 and t_n and not collide with the actor in the same
lane." Fixing ``s_n`` is exactly a :class:`FixedGapThreat`; the sweep
solves the tolerable latency at every grid point and reports 1/l.

The paper's figure shows 30+ FPR in gray and unavoidable collisions in
white; :class:`SensitivityGrid` carries those as masks (NaN = white).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ego_profile import EgoMotion
from repro.core.latency import LatencySearch
from repro.core.parameters import ZhuyiParams
from repro.core.threat import FixedGapThreat
from repro.errors import ConfigurationError
from repro.units import mph_to_mps


@dataclass(frozen=True)
class SensitivityGrid:
    """One Figure 8 panel.

    Attributes:
        gap: the fixed ``s_n`` (metres).
        ego_speeds_mph: sweep of ego speeds (x axis of the paper plot).
        actor_speeds_mph: sweep of actor end speeds (y axis).
        min_fpr: grid of minimum FPR estimates, indexed
            ``[actor_speed, ego_speed]``; NaN marks unavoidable
            collisions (the paper's white region).
    """

    gap: float
    ego_speeds_mph: np.ndarray
    actor_speeds_mph: np.ndarray
    min_fpr: np.ndarray

    def gray_mask(self, cap: float = 30.0) -> np.ndarray:
        """The paper's gray region: FPR above the system cap."""
        with np.errstate(invalid="ignore"):
            return self.min_fpr > cap

    def white_mask(self) -> np.ndarray:
        """The paper's white region: unavoidable collision."""
        return np.isnan(self.min_fpr)

    def max_finite_fpr(self) -> float:
        """Largest finite FPR on the grid (0 when all unavoidable)."""
        finite = self.min_fpr[~np.isnan(self.min_fpr)]
        return float(finite.max()) if finite.size else 0.0

    def region_fraction(self, mask: np.ndarray) -> float:
        """Fraction of the grid covered by a mask."""
        return float(np.count_nonzero(mask)) / self.min_fpr.size

    def band_max(self, mph_low: float, mph_high: float) -> float:
        """Max finite FPR among ego speeds within an mph band."""
        columns = (self.ego_speeds_mph >= mph_low) & (
            self.ego_speeds_mph <= mph_high
        )
        sub = self.min_fpr[:, columns]
        finite = sub[~np.isnan(sub)]
        return float(finite.max()) if finite.size else 0.0


def sweep_min_fpr(
    gap: float,
    ego_speeds_mph: np.ndarray | None = None,
    actor_speeds_mph: np.ndarray | None = None,
    params: ZhuyiParams | None = None,
    l0: float | None = None,
    search: LatencySearch | None = None,
) -> SensitivityGrid:
    """Run the Figure 8 sweep for one fixed gap.

    Args:
        gap: the fixed ``s_n`` in metres (30 and 100 in the paper).
        ego_speeds_mph: ego speeds swept (default 0-70 mph, 36 points).
        actor_speeds_mph: actor end speeds swept (default 0-70 mph).
        params: Zhuyi constants.
        l0: assumed current processing latency. The default (``l_max``)
            makes the confirmation delay ``alpha = K*(l - l0)`` clamp to
            zero for every probed latency — a pure-latency sweep, which
            is the only reading that reproduces the paper's "FPR <= 2
            below 25 mph" band. Pass e.g. ``1/30`` to study a stack
            already running at 30 FPR.
        search: latency solver override.
    """
    if gap <= 0.0:
        raise ConfigurationError(f"gap must be positive, got {gap}")
    if ego_speeds_mph is None:
        ego_speeds_mph = np.linspace(0.0, 70.0, 36)
    if actor_speeds_mph is None:
        actor_speeds_mph = np.linspace(0.0, 70.0, 36)
    params = params if params is not None else ZhuyiParams()
    if l0 is None:
        l0 = params.l_max
    solver = search if search is not None else LatencySearch(params=params)

    grid = np.empty((len(actor_speeds_mph), len(ego_speeds_mph)))
    for i, actor_mph in enumerate(actor_speeds_mph):
        threat = FixedGapThreat(gap=gap, actor_speed=mph_to_mps(actor_mph))
        for j, ego_mph in enumerate(ego_speeds_mph):
            ego = EgoMotion.from_state(
                speed=mph_to_mps(ego_mph), accel=0.0, params=params
            )
            result = solver.tolerable_latency(ego, threat, l0)
            if result.latency is None:
                grid[i, j] = np.nan
            else:
                grid[i, j] = 1.0 / result.latency
    return SensitivityGrid(
        gap=gap,
        ego_speeds_mph=np.asarray(ego_speeds_mph, dtype=float),
        actor_speeds_mph=np.asarray(actor_speeds_mph, dtype=float),
        min_fpr=grid,
    )
