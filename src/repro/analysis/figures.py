"""Figures 4-7 — per-camera latency estimates over a scenario's timeline.

Figures 4-6 come from the *offline* evaluator over a 30-FPR trace of
Cut-out fast, Challenging cut-in on a curved road, and Cut-in; each
shows the left/front/right camera latency series plus the ego's
acceleration. Figure 7 repeats Cut-in with the *online* estimator (world
model + predicted trajectories), whose variance against Figure 6c the
paper attributes to prediction differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import pearson_correlation
from repro.core.aggregation import PercentileAggregator
from repro.core.evaluator import OfflineEvaluator
from repro.core.online import OnlineEstimator
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.prediction.maneuver import ManeuverPredictor
from repro.scenarios.catalog import build_scenario
from repro.system.av_system import ZhuyiOnlineSystem
from repro.units import seconds_to_ms


@dataclass(frozen=True)
class FigureSeries:
    """One figure's data: per-camera latency series + ego acceleration."""

    scenario: str
    mode: str
    times_ms: tuple[int, ...]
    camera_latencies: Mapping[str, tuple[float, ...]]
    ego_accel: tuple[float, ...]
    collided: bool

    def latency(self, camera: str) -> tuple[float, ...]:
        """Latency series (seconds) for one camera."""
        if camera not in self.camera_latencies:
            raise ConfigurationError(
                f"no series for camera {camera!r}; have "
                f"{sorted(self.camera_latencies)}"
            )
        return self.camera_latencies[camera]

    def min_latency(self, camera: str) -> float:
        """Most demanding latency over the run (seconds)."""
        return min(self.latency(camera))

    def max_fpr(self, camera: str) -> float:
        """Highest FPR requirement over the run."""
        return max(1.0 / max(value, 1e-3) for value in self.latency(camera))


def offline_figure_series(
    scenario: str,
    seed: int = 0,
    fpr: float = 30.0,
    cameras: Sequence[str] = ANALYZED_CAMERAS,
    params: ZhuyiParams | None = None,
    stride: float = 0.1,
) -> FigureSeries:
    """Figures 4-6: run a scenario and evaluate offline."""
    built = build_scenario(scenario, seed=seed)
    trace = built.run(fpr=fpr)
    evaluator = OfflineEvaluator(
        params=params if params is not None else ZhuyiParams(),
        road=built.road,
        stride=stride,
    )
    series = evaluator.evaluate(trace)
    return FigureSeries(
        scenario=scenario,
        mode="offline",
        times_ms=tuple(seconds_to_ms(t) for t in series.times()),
        camera_latencies={
            camera: tuple(series.camera_latency_series(camera))
            for camera in cameras
        },
        ego_accel=tuple(series.ego_accel_series()),
        collided=trace.has_collision,
    )


def online_figure_series(
    scenario: str = "cut_in",
    seed: int = 0,
    fpr: float = 30.0,
    cameras: Sequence[str] = ANALYZED_CAMERAS,
    params: ZhuyiParams | None = None,
    period: float = 0.1,
    percentile: float = 90.0,
) -> FigureSeries:
    """Figure 7: run a scenario with the online estimator in the loop.

    The paper aggregates with the 99th percentile over a *dense* set of
    predicted trajectories; our physics predictor emits five discrete
    hypotheses, where a 99th percentile degenerates to the worst case.
    The default 90th percentile plays the same "cautious but not
    dictated by a 5%-probability extreme" role at this granularity.
    """
    built = build_scenario(scenario, seed=seed)
    zhuyi_params = params if params is not None else ZhuyiParams()
    predictor = ManeuverPredictor(road=built.road, target_lane=built.spec.ego_lane)
    system = ZhuyiOnlineSystem(
        estimator=OnlineEstimator(
            params=zhuyi_params,
            predictor=predictor,
            road=built.road,
            aggregator=PercentileAggregator(percentile),
        ),
        period=period,
    )
    trace = built.run(fpr=fpr, hooks=[system])
    ticks = system.ticks()
    if not ticks:
        raise ConfigurationError("online system recorded no ticks")
    return FigureSeries(
        scenario=scenario,
        mode="online",
        times_ms=tuple(seconds_to_ms(tick.time) for tick in ticks),
        camera_latencies={
            camera: tuple(tick.latency(camera) for tick in ticks)
            for camera in cameras
        },
        ego_accel=tuple(tick.ego_accel for tick in ticks),
        collided=trace.has_collision,
    )


def decel_correlation(
    series: FigureSeries,
    camera: str = "front_120",
    max_lag: int = 20,
) -> float:
    """Correlation between front-camera FPR demand and ego deceleration.

    The paper observes "a strong correlation between the front camera
    FPR requirements and ego deceleration". Zhuyi *anticipates*: its
    demand rises when the threat appears, before the (perception-bound)
    ego starts braking, so the series are correlated at a small lead.
    This scans non-negative lags (demand leading braking) up to
    ``max_lag`` samples and returns the strongest Pearson coefficient.
    """
    fprs = [1.0 / max(value, 1e-3) for value in series.latency(camera)]
    braking = [max(0.0, -accel) for accel in series.ego_accel]
    best = pearson_correlation(fprs, braking)
    for lag in range(1, min(max_lag, len(fprs) - 2) + 1):
        shifted = pearson_correlation(fprs[:-lag], braking[lag:])
        best = max(best, shifted)
    return best
