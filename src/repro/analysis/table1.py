"""Table 1 — the paper's validation table.

For every catalog scenario: run the closed loop at each fixed FPR of the
validation grid (several seeds, as "simulations can be non-deterministic
... we run a scenario with a fixed FPR ten times and show an average"),
determine the minimum required FPR, evaluate the Zhuyi model offline on
every collision-free trace, and aggregate:

* mean of the max estimated FPR per run at each fixed setting
  ("N/A" where any seed collided — the paper's convention for runs at
  or below the MRF);
* ``max(F_c1 + F_c2 + F_c3)`` across all runs;
* the fraction of a 30-FPR 3-camera provision that peak demand needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.report import format_table
from repro.core.evaluator import OfflineEvaluator
from repro.core.parameters import ZhuyiParams
from repro.errors import ConfigurationError
from repro.perception.sensor import ANALYZED_CAMERAS
from repro.scenarios.catalog import SCENARIO_NAMES, build_scenario
from repro.system.mrf import DEFAULT_FPR_GRID, MRFResult, find_minimum_required_fpr


@dataclass(frozen=True)
class Table1Config:
    """Knobs for the Table 1 harness.

    The paper uses ten seeds and the full grid; the defaults here keep a
    laptop run in minutes. Both are overridable.
    """

    scenarios: Sequence[str] = SCENARIO_NAMES
    fpr_grid: Sequence[float] = DEFAULT_FPR_GRID
    seeds: Sequence[int] = (0, 1, 2)
    provisioned_fpr: float = 30.0
    cameras: Sequence[str] = ANALYZED_CAMERAS
    stride: float = 0.05
    params: ZhuyiParams = field(default_factory=ZhuyiParams)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("no scenarios selected")
        if not self.fpr_grid or not self.seeds:
            raise ConfigurationError("grid and seeds must be non-empty")


@dataclass(frozen=True)
class Table1Row:
    """One scenario's row."""

    scenario: str
    ego_speed_mph: float
    activity: Mapping[str, bool]
    paper_mrf: str
    mrf: MRFResult
    mean_estimates: Mapping[float, float | None]
    max_total_fpr: float
    fraction: float

    def cells(self, fpr_grid: Sequence[float]) -> list[object]:
        """Row cells in the paper's column order."""
        def flag(key: str) -> str:
            return "Yes" if self.activity.get(key, False) else "No"

        cells: list[object] = [
            self.scenario,
            f"{self.ego_speed_mph:g}",
            flag("front"),
            flag("right"),
            flag("left"),
            self.mrf.label,
        ]
        for fpr in fpr_grid:
            estimate = self.mean_estimates.get(fpr)
            cells.append("N/A" if estimate is None else f"{estimate:.1f}")
        cells.append(f"{self.max_total_fpr:.1f}")
        cells.append(f"{self.fraction:.2f}")
        return cells


def generate_table1(config: Table1Config | None = None) -> list[Table1Row]:
    """Run the full validation and return one row per scenario."""
    config = config if config is not None else Table1Config()
    rows = []
    for name in config.scenarios:
        rows.append(_scenario_row(name, config))
    return rows


def render_table1(
    rows: Sequence[Table1Row], config: Table1Config | None = None
) -> str:
    """The table as printable text (paper column layout)."""
    config = config if config is not None else Table1Config()
    headers = ["Scenario", "mph", "Front", "Right", "Left", "MRF"]
    headers += [f"@{fpr:g}" for fpr in config.fpr_grid]
    headers += ["max(Fc1+Fc2+Fc3)", "Fraction"]
    return format_table(headers, [row.cells(config.fpr_grid) for row in rows])


def _scenario_row(name: str, config: Table1Config) -> Table1Row:
    collision_cache: dict[tuple[float, int], bool] = {}
    per_fpr_estimates: dict[float, list[float]] = {
        fpr: [] for fpr in config.fpr_grid
    }
    per_fpr_collided: dict[float, bool] = {fpr: False for fpr in config.fpr_grid}
    max_total = 0.0
    spec_meta: Mapping[str, object] = {}

    for seed in config.seeds:
        built = build_scenario(name, seed=seed)
        evaluator = OfflineEvaluator(
            params=config.params, road=built.road, stride=config.stride
        )
        for fpr in config.fpr_grid:
            trace = built.run(fpr=float(fpr))
            spec_meta = trace.metadata
            collision_cache[(float(fpr), seed)] = trace.has_collision
            if trace.has_collision:
                per_fpr_collided[fpr] = True
                continue
            series = evaluator.evaluate(trace)
            per_fpr_estimates[fpr].append(series.max_fpr())
            max_total = max(max_total, series.max_total_fpr(config.cameras))

    mrf = find_minimum_required_fpr(
        name,
        fpr_grid=config.fpr_grid,
        seeds=config.seeds,
        collision_cache=collision_cache,
    )
    mean_estimates: dict[float, float | None] = {}
    for fpr in config.fpr_grid:
        values = per_fpr_estimates[fpr]
        if per_fpr_collided[fpr] or not values:
            mean_estimates[fpr] = None
        else:
            mean_estimates[fpr] = sum(values) / len(values)

    provision = config.provisioned_fpr * len(config.cameras)
    return Table1Row(
        scenario=name,
        ego_speed_mph=float(spec_meta.get("ego_speed_mph", 0.0)),
        activity=dict(spec_meta.get("activity", {})),
        paper_mrf=str(spec_meta.get("paper_mrf", "?")),
        mrf=mrf,
        mean_estimates=mean_estimates,
        max_total_fpr=max_total,
        fraction=max_total / provision if provision else 0.0,
    )
