"""Figure 1 — expected camera-perception throughput demand.

"We estimate the Tera Operations Per Second (TOPS) assuming the
SSD-Large object detection model is run for 1200x1200 pixel frames on
all 12 cameras (requirement per run is from MLPerf). Since accurate
perception also requires running other camera-based models, we increase
the demand by 20%."

The numbers here are public constants: MLPerf's SSD-ResNet34 ("SSD
Large") costs about 388 GOPs per 1200x1200 frame; DRIVE AGX Xavier
offers 30 INT8 TOPS and Jetson AGX Orin 275 INT8 TOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PerceptionModel:
    """One perception DNN's per-frame cost."""

    name: str
    giga_ops_per_frame: float
    resolution: tuple[int, int]

    def __post_init__(self) -> None:
        if self.giga_ops_per_frame <= 0.0:
            raise ConfigurationError("per-frame cost must be positive")


@dataclass(frozen=True)
class SoC:
    """An in-vehicle computer's advertised INT8 throughput."""

    name: str
    tops: float

    def __post_init__(self) -> None:
        if self.tops <= 0.0:
            raise ConfigurationError("SoC throughput must be positive")


#: MLPerf inference vision models (per-frame cost in GOPs).
PERCEPTION_MODELS: dict[str, PerceptionModel] = {
    "ssd-large": PerceptionModel(
        name="SSD-Large (SSD-ResNet34)",
        giga_ops_per_frame=388.0,
        resolution=(1200, 1200),
    ),
    "ssd-small": PerceptionModel(
        name="SSD-Small (SSD-MobileNet)",
        giga_ops_per_frame=7.5,
        resolution=(300, 300),
    ),
    "resnet50": PerceptionModel(
        name="ResNet-50 v1.5",
        giga_ops_per_frame=8.2,
        resolution=(224, 224),
    ),
}

#: The paper's two reference SoCs.
SOC_CATALOG: dict[str, SoC] = {
    "xavier": SoC(name="NVIDIA DRIVE AGX Xavier", tops=30.0),
    "orin": SoC(name="NVIDIA Jetson AGX Orin", tops=275.0),
}


@dataclass(frozen=True)
class ThroughputModel:
    """Analytic demand model behind Figure 1.

    Attributes:
        model: the per-camera detection model.
        cameras: number of cameras (the paper assumes 12).
        fpr: frames per second per camera (the default 30-FPR system).
        extra_models_factor: multiplier for the additional camera models
            that reuse extracted features (the paper's +20%).
    """

    model: PerceptionModel = PERCEPTION_MODELS["ssd-large"]
    cameras: int = 12
    fpr: float = 30.0
    extra_models_factor: float = 1.2

    def __post_init__(self) -> None:
        if self.cameras < 1:
            raise ConfigurationError("camera count must be at least 1")
        if self.fpr <= 0.0:
            raise ConfigurationError("FPR must be positive")
        if self.extra_models_factor < 1.0:
            raise ConfigurationError("extra-models factor must be >= 1")

    def demand_tops(self) -> float:
        """Total perception demand in TOPS."""
        per_camera = self.model.giga_ops_per_frame * self.fpr / 1000.0
        return per_camera * self.cameras * self.extra_models_factor

    def demand_at_fpr(self, fpr: float) -> float:
        """Demand if every camera ran at ``fpr`` instead."""
        if fpr <= 0.0:
            raise ConfigurationError("FPR must be positive")
        return self.demand_tops() * fpr / self.fpr

    def utilization(self, soc: SoC) -> float:
        """Demand as a fraction of one SoC's capability."""
        return self.demand_tops() / soc.tops

    def feasible_on(self, soc: SoC) -> bool:
        """Whether the demand fits the SoC at all."""
        return self.utilization(soc) <= 1.0

    def figure1_rows(self) -> list[tuple[str, float]]:
        """The Figure 1 bars: demand plus each reference SoC."""
        rows = [("Perception demand (12 cams @ 30 FPR)", self.demand_tops())]
        for soc in SOC_CATALOG.values():
            rows.append((soc.name, soc.tops))
        return rows
