"""Plain-text rendering: tables, heatmaps and time series.

The benchmark harnesses print the same rows/series the paper reports;
with no plotting stack available offline, everything renders as ASCII.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Monospace table with one separator line under the headers."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    def line(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(row, widths))

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_heatmap(
    grid: np.ndarray,
    levels: Sequence[tuple[float, str]] = (
        (2.0, "."),
        (5.0, ":"),
        (10.0, "+"),
        (15.0, "*"),
        (30.0, "#"),
    ),
    overflow: str = "@",
    nan_char: str = " ",
) -> str:
    """Character heatmap of a 2-D array (row 0 printed last — y grows up).

    ``levels`` maps upper bounds to glyphs; values above every bound get
    ``overflow`` (the paper's gray "30+ FPR" region) and NaNs (the white
    "unavoidable collision" region) get ``nan_char``.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ConfigurationError(f"heatmap needs a 2-D grid, got {grid.ndim}-D")
    lines = []
    for row in grid[::-1]:
        chars = []
        for value in row:
            if math.isnan(value):
                chars.append(nan_char)
                continue
            for bound, glyph in levels:
                if value <= bound:
                    chars.append(glyph)
                    break
            else:
                chars.append(overflow)
        lines.append("".join(chars))
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """ASCII line plot of one series (column-downsampled to ``width``)."""
    if width < 2 or height < 2:
        raise ConfigurationError("plot must be at least 2x2")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot plot an empty series")
    columns = np.array_split(data, min(width, data.size))
    col_values = np.array([column.mean() for column in columns])
    lo, hi = float(np.min(col_values)), float(np.max(col_values))
    if hi - lo < 1e-12:
        hi = lo + 1.0
    rows = np.clip(
        ((col_values - lo) / (hi - lo) * (height - 1)).round().astype(int),
        0,
        height - 1,
    )
    canvas = [[" "] * len(col_values) for _ in range(height)]
    for x, y in enumerate(rows):
        canvas[height - 1 - y][x] = "*"
    lines = ["".join(row) for row in canvas]
    header = f"{label}  [min={lo:.3g}, max={hi:.3g}]" if label else (
        f"[min={lo:.3g}, max={hi:.3g}]"
    )
    return "\n".join([header] + lines)


def pearson_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    x = np.asarray(list(a), dtype=float)
    y = np.asarray(list(b), dtype=float)
    if x.size != y.size:
        raise ConfigurationError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ConfigurationError("need at least two samples")
    if np.std(x) < 1e-12 or np.std(y) < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
