"""Exception hierarchy for the Zhuyi reproduction library.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the library can catch one type. Sub-types distinguish
configuration mistakes from runtime simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A parameter set or scenario specification is invalid."""


class GeometryError(ReproError):
    """A geometric construction is degenerate (zero-length lane, etc.)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state at runtime."""


class TraceError(ReproError):
    """A scenario trace is malformed or cannot be (de)serialized."""


class EstimationError(ReproError):
    """The Zhuyi estimator was invoked with inconsistent inputs."""
