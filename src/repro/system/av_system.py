"""The Zhuyi block wired into the running AV (Figure 3).

:class:`ZhuyiOnlineSystem` is a simulation hook: at a configurable
cadence it runs the online estimator on the perceived world model,
feeds the result to the safety checker, and (optionally) retunes the
perception system's per-camera rates through the work prioritizer.
The recorded tick series is the post-deployment counterpart of the
offline evaluator's output — the data behind Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.evaluator import EvaluationTick
from repro.core.online import OnlineEstimator
from repro.errors import ConfigurationError
from repro.system.prioritization import WorkPrioritizer
from repro.system.safety_check import SafetyChecker, SafetyVerdict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class OnlineRecord:
    """One online estimation tick with its safety verdict."""

    tick: EvaluationTick
    verdict: SafetyVerdict
    applied_rates: dict[str, float] | None


@dataclass
class ZhuyiOnlineSystem:
    """Online safety check + work prioritization as a simulation hook.

    Attributes:
        estimator: the online Zhuyi estimator.
        checker: safety checker receiving every tick.
        prioritizer: when given, camera rates are retuned every tick.
        period: estimation cadence (seconds).
        reference_camera: camera whose current processing latency is used
            as the model's ``l0``.
    """

    estimator: OnlineEstimator
    checker: SafetyChecker = field(default_factory=SafetyChecker)
    prioritizer: WorkPrioritizer | None = None
    period: float = 0.1
    reference_camera: str = "front_120"
    records: list[OnlineRecord] = field(default_factory=list)
    _next_run: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError(f"period must be positive: {self.period}")

    # ------------------------------------------------------------------
    # SimHook interface
    # ------------------------------------------------------------------

    def on_step(self, now: float, simulator: "Simulator") -> None:
        """Run the estimator at the configured cadence."""
        if now + 1e-9 < self._next_run:
            return
        self._next_run = now + self.period

        perception = simulator.perception
        l0 = perception.processing_latency(self.reference_camera)
        tick = self.estimator.estimate(
            now=now,
            ego_state=simulator.ego_state,
            ego_spec=simulator.ego_spec,
            world_model=perception.world_model,
            l0=l0,
        )
        verdict = self.checker.check(tick, perception.fprs())

        applied = None
        if self.prioritizer is not None:
            applied = self.prioritizer.allocation_for(tick)
            for camera, rate in applied.items():
                perception.set_fpr(camera, rate)
        self.records.append(
            OnlineRecord(tick=tick, verdict=verdict, applied_rates=applied)
        )

    # ------------------------------------------------------------------
    # series accessors (Figure 7)
    # ------------------------------------------------------------------

    def times(self) -> list[float]:
        """Timestamps of the recorded ticks."""
        return [record.tick.time for record in self.records]

    def camera_latency_series(self, camera: str) -> list[float]:
        """Online binding-latency series for one camera (seconds)."""
        return [record.tick.latency(camera) for record in self.records]

    def camera_fpr_series(self, camera: str) -> list[float]:
        """Online FPR-estimate series for one camera."""
        return [record.tick.fpr(camera) for record in self.records]

    def alarms(self) -> list[SafetyVerdict]:
        """All verdicts that raised at least one alarm."""
        return [
            record.verdict for record in self.records if not record.verdict.safe
        ]

    def ticks(self) -> Sequence[EvaluationTick]:
        """All estimation ticks."""
        return [record.tick for record in self.records]
