"""The online safety check (Section 3.2, "Safety Check").

"With Zhuyi's estimated per-camera requirements, the system can check
whether the current per-camera processing rates are above the estimates.
If not, there is a safety concern with a high potential for a collision
... the Safety check block can send an alarm to the AV system which can
take one of the following actions": activate a backup system, drop
non-essential work, or raise the under-provisioned cameras' rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.evaluator import EvaluationTick
from repro.errors import ConfigurationError


class MitigationAction(enum.Enum):
    """The paper's three responses to a safety alarm."""

    ACTIVATE_BACKUP = "activate-backup"
    LIMITED_FUNCTIONALITY = "limited-functionality"
    RAISE_PROCESSING_RATE = "raise-processing-rate"


@dataclass(frozen=True)
class Alarm:
    """One camera operating below its Zhuyi requirement."""

    time: float
    camera: str
    operating_fpr: float
    required_fpr: float

    @property
    def deficit(self) -> float:
        """How many frames/second short the camera is."""
        return self.required_fpr - self.operating_fpr


@dataclass(frozen=True)
class SafetyVerdict:
    """Result of one safety-check evaluation."""

    time: float
    safe: bool
    alarms: tuple[Alarm, ...]
    recommended_action: MitigationAction | None


@dataclass
class SafetyChecker:
    """Compares operating rates against Zhuyi estimates.

    Attributes:
        margin: multiplicative headroom required on top of the estimate
            (1.0 = the paper's plain comparison).
        action_policy: mitigation recommended when alarms fire.
    """

    margin: float = 1.0
    action_policy: MitigationAction = MitigationAction.RAISE_PROCESSING_RATE
    _history: list[SafetyVerdict] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.margin < 1.0:
            raise ConfigurationError(
                f"safety margin must be at least 1, got {self.margin}"
            )

    @property
    def history(self) -> Sequence[SafetyVerdict]:
        """All verdicts issued so far."""
        return tuple(self._history)

    @property
    def alarm_count(self) -> int:
        """Total alarms raised so far."""
        return sum(len(verdict.alarms) for verdict in self._history)

    def check(
        self,
        tick: EvaluationTick,
        operating_fprs: Mapping[str, float],
    ) -> SafetyVerdict:
        """Evaluate one estimation tick against current camera rates.

        Cameras present in the tick but absent from ``operating_fprs``
        are ignored (e.g. estimates for virtual cameras).
        """
        alarms = []
        for camera, estimate in tick.camera_estimates.items():
            if camera not in operating_fprs:
                continue
            operating = operating_fprs[camera]
            required = estimate.fpr * self.margin
            if operating + 1e-9 < required:
                alarms.append(
                    Alarm(
                        time=tick.time,
                        camera=camera,
                        operating_fpr=operating,
                        required_fpr=required,
                    )
                )
        verdict = SafetyVerdict(
            time=tick.time,
            safe=not alarms,
            alarms=tuple(alarms),
            recommended_action=self.action_policy if alarms else None,
        )
        self._history.append(verdict)
        return verdict
