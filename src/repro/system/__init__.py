"""The Zhuyi-based AV system (Section 3 of the paper).

Wires the online estimator into the running AV: a **safety check** that
compares each camera's operating rate against Zhuyi's estimate and raises
alarms (Figure 3's green path), a **work prioritizer** that redistributes
a fixed frame budget across cameras proportionally to their estimates,
and the **pre-deployment MRF search** used to validate the model
(Table 1's "Min Required FPR" column).
"""

from repro.system.safety_check import (
    Alarm,
    MitigationAction,
    SafetyChecker,
    SafetyVerdict,
)
from repro.system.prioritization import (
    WorkPrioritizer,
    allocate_frame_budget,
    rank_actors,
)
from repro.system.av_system import ZhuyiOnlineSystem, OnlineRecord
from repro.system.mrf import MRFResult, find_minimum_required_fpr

__all__ = [
    "Alarm",
    "MitigationAction",
    "SafetyChecker",
    "SafetyVerdict",
    "WorkPrioritizer",
    "allocate_frame_budget",
    "rank_actors",
    "ZhuyiOnlineSystem",
    "OnlineRecord",
    "MRFResult",
    "find_minimum_required_fpr",
]
