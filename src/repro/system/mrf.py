"""Minimum-required-FPR search (Table 1's "Min Required FPR" column).

"We validate the Zhuyi model by running the AV system with different FPR
(ranging from 1 to 30) and check whether the estimated FPR for a
scenario is above the minimum required FPR (MRF). The MRF is the FPR
above which no collision was detected in the scenario."

Runs of the same seed share choreography, so the collision outcome is a
paired comparison across FPR settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.base import BuiltScenario
from repro.scenarios.catalog import build_scenario

#: The paper's validation grid of fixed FPR settings.
DEFAULT_FPR_GRID: tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 15.0, 30.0
)


@dataclass(frozen=True)
class MRFResult:
    """Outcome of one MRF search.

    Attributes:
        scenario: scenario name.
        mrf: the minimum FPR with no collision across all tested seeds,
            or ``None`` when every tested rate collided.
        collision_fprs: rates at which at least one seed collided.
        safe_fprs: rates at which no seed collided.
        runs: total closed-loop runs executed.
    """

    scenario: str
    mrf: float | None
    collision_fprs: tuple[float, ...]
    safe_fprs: tuple[float, ...]
    runs: int

    @property
    def label(self) -> str:
        """Table 1 style label: "<1" when even the lowest rate is safe."""
        if self.mrf is None:
            return "unsafe"
        if not self.collision_fprs:
            return "<" + _format_fpr(self.mrf)
        return _format_fpr(self.mrf)


def _format_fpr(value: float) -> str:
    return f"{value:g}"


def find_minimum_required_fpr(
    scenario: str | BuiltScenario,
    fpr_grid: Sequence[float] = DEFAULT_FPR_GRID,
    seeds: Sequence[int] = (0,),
    collision_cache: Mapping[tuple[float, int], bool] | None = None,
) -> MRFResult:
    """Search the FPR grid for the lowest collision-free setting.

    Args:
        scenario: catalog name or an already-built scenario (whose seed
            is then replaced by each entry of ``seeds``).
        fpr_grid: candidate rates, any order (sorted internally).
        seeds: jitter seeds; a rate counts as safe only when *all* seeds
            are collision-free at that rate.
        collision_cache: optional pre-computed ``(fpr, seed) -> collided``
            results (the Table 1 harness reuses its validation runs).
    """
    if not fpr_grid:
        raise ConfigurationError("FPR grid must not be empty")
    if not seeds:
        raise ConfigurationError("need at least one seed")

    name = scenario if isinstance(scenario, str) else scenario.name
    rates = sorted(set(fpr_grid))
    runs = 0
    collision_rates = []
    safe_rates = []
    for rate in rates:
        collided = False
        for seed in seeds:
            key = (rate, seed)
            if collision_cache is not None and key in collision_cache:
                outcome = collision_cache[key]
            else:
                trace = build_scenario(name, seed=seed).run(fpr=rate)
                runs += 1
                outcome = trace.has_collision
            if outcome:
                collided = True
        if collided:
            collision_rates.append(rate)
        else:
            safe_rates.append(rate)

    # The MRF is the lowest rate above every colliding rate.
    mrf = None
    worst_collision = max(collision_rates) if collision_rates else None
    for rate in rates:
        if worst_collision is None or rate > worst_collision:
            mrf = rate
            break
    return MRFResult(
        scenario=name,
        mrf=mrf,
        collision_fprs=tuple(collision_rates),
        safe_fprs=tuple(safe_rates),
        runs=runs,
    )
