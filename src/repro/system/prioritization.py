"""Work prioritization (Section 3.2, "Work Prioritization").

"Instead of processing each camera's images at the same frequency, the
AV system could process these images at rates proportional to the
estimated rates." A fixed total frame budget is redistributed across
cameras proportionally to Zhuyi's per-camera estimates, subject to each
camera's estimate being a hard floor (safety first, comfort second).

"The inverse of the per-actor tolerable latency estimate is proportional
to the actor's importance" — :func:`rank_actors` orders scene objects by
that importance for object-level work truncation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.evaluator import EvaluationTick
from repro.core.latency import UNAVOIDABLE_LATENCY
from repro.errors import ConfigurationError


def allocate_frame_budget(
    estimates: Mapping[str, float],
    total_budget: float,
    min_fpr: float = 1.0,
    max_fpr: float = 30.0,
) -> dict[str, float]:
    """Split a total frames/second budget across cameras.

    Every camera first receives its Zhuyi estimate (clamped to the
    camera's operating range — safety floor); remaining budget is then
    distributed proportionally to the estimates (importance-weighted
    comfort). When the budget cannot cover the floors, cameras are
    scaled down proportionally — the caller should treat that as an
    alarm condition.

    Returns a per-camera allocation summing to ``total_budget`` (unless
    the per-camera cap binds first).
    """
    if total_budget <= 0.0:
        raise ConfigurationError("frame budget must be positive")
    if not estimates:
        raise ConfigurationError("no cameras to allocate to")
    if min_fpr < 0.0 or max_fpr <= min_fpr:
        raise ConfigurationError("need 0 <= min_fpr < max_fpr")

    floors = {
        camera: min(max(estimate, min_fpr), max_fpr)
        for camera, estimate in estimates.items()
    }
    floor_total = sum(floors.values())

    if floor_total >= total_budget:
        # Degraded mode: scale floors to fit the budget.
        scale = total_budget / floor_total
        return {camera: floor * scale for camera, floor in floors.items()}

    # Water-filling: hand the surplus out proportionally to demand,
    # re-distributing whatever spills over a camera's cap to the rest.
    allocation = dict(floors)
    surplus = total_budget - floor_total
    active = {camera for camera, value in allocation.items() if value < max_fpr}
    while surplus > 1e-9 and active:
        weight_total = sum(floors[camera] for camera in active)
        spilled = 0.0
        for camera in list(active):
            share = surplus * floors[camera] / weight_total
            headroom = max_fpr - allocation[camera]
            granted = min(share, headroom)
            allocation[camera] += granted
            spilled += share - granted
            if allocation[camera] >= max_fpr - 1e-12:
                active.discard(camera)
        surplus = spilled
    return allocation


def rank_actors(
    actor_latencies: Mapping[Hashable, float | None],
) -> list[Hashable]:
    """Actors ordered from most to least important.

    Importance is the inverse tolerable latency; unavoidable verdicts
    (``None``) rank first.
    """
    def importance(item: tuple[Hashable, float | None]) -> float:
        latency = item[1]
        if latency is None or latency <= UNAVOIDABLE_LATENCY:
            return float("inf")
        return 1.0 / latency

    ordered = sorted(actor_latencies.items(), key=importance, reverse=True)
    return [actor_id for actor_id, _ in ordered]


@dataclass
class WorkPrioritizer:
    """Applies budget reallocation from estimation ticks.

    Attributes:
        total_budget: frames/second available across the managed cameras
            (e.g. 3 cameras x 30 FPR = 90).
        cameras: cameras under management (others left untouched).
        min_fpr / max_fpr: per-camera operating range.
    """

    total_budget: float
    cameras: Sequence[str]
    min_fpr: float = 1.0
    max_fpr: float = 30.0

    def __post_init__(self) -> None:
        if not self.cameras:
            raise ConfigurationError("prioritizer needs at least one camera")
        if self.total_budget <= 0.0:
            raise ConfigurationError("frame budget must be positive")

    def allocation_for(self, tick: EvaluationTick) -> dict[str, float]:
        """Per-camera rates for one estimation tick."""
        estimates = {
            camera: tick.fpr(camera)
            for camera in self.cameras
            if camera in tick.camera_estimates
        }
        if not estimates:
            raise ConfigurationError(
                f"tick carries no estimates for cameras {list(self.cameras)}"
            )
        return allocate_frame_budget(
            estimates,
            total_budget=self.total_budget,
            min_fpr=self.min_fpr,
            max_fpr=self.max_fpr,
        )
