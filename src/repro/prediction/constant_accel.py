"""Constant-acceleration prediction.

Integrates the actor's estimated longitudinal acceleration along its
heading, clamping speed at zero (a braking actor stops; it does not
reverse).

The rollout arithmetic lives in one array kernel
(:func:`rollout_constant_accel_trace`), evaluated either for a single
tick (the per-tick :meth:`ConstantAccelerationPredictor.predict`) or for
every tick of a trace at once (``predict_trace``). One kernel, two
shapes: the batch replay path and the scalar per-tick path therefore see
bit-identical futures by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dynamics.longitudinal import travel_arrays
from repro.dynamics.state import (
    RolloutArrays,
    StateTrajectory,
    TimedState,
    VehicleState,
)
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import (
    PredictedTrajectory,
    TraceHypothesis,
    sample_times,
)


def rollout_constant_accel_trace(
    px: np.ndarray,
    py: np.ndarray,
    heading: np.ndarray,
    speed: np.ndarray,
    accel: np.ndarray,
    nows: np.ndarray,
    rel_times: np.ndarray,
    max_speed: float | None = None,
) -> RolloutArrays:
    """Straight-line constant-acceleration rollouts, one row per tick.

    The closed-form batch kernel behind every straight-line hypothesis:
    clamped constant-acceleration travel
    (:func:`repro.dynamics.longitudinal.travel_arrays`) along each
    tick's heading over the shared ``rel_times`` grid.
    """
    cos_h = np.cos(heading)
    sin_h = np.sin(heading)
    distances, speeds = travel_arrays(
        speed[:, None], accel[:, None], rel_times[None, :], max_speed
    )
    return RolloutArrays(
        times=nows[:, None] + rel_times[None, :],
        xs=px[:, None] + cos_h[:, None] * distances,
        ys=py[:, None] + sin_h[:, None] * distances,
        speeds=speeds,
        # The final sample keeps the rollout heading, so the coasting
        # velocity is cos/sin(heading) times the final speed — the same
        # floats StateTrajectory derives from the last TimedState.
        end_vx=cos_h * speeds[:, -1],
        end_vy=sin_h * speeds[:, -1],
    )


def rollout_constant_accel(
    actor: PerceivedActor,
    accel: float,
    now: float,
    horizon: float,
    sample_period: float,
    max_speed: float | None = None,
) -> StateTrajectory:
    """Straight-line rollout at a fixed longitudinal acceleration.

    The per-tick view of :func:`rollout_constant_accel_trace`: one call
    into the shared array kernel, wrapped back into a
    :class:`StateTrajectory`.
    """
    rel = sample_times(horizon, sample_period)
    rollout = rollout_constant_accel_trace(
        px=np.array([actor.position.x]),
        py=np.array([actor.position.y]),
        heading=np.array([actor.heading]),
        speed=np.array([actor.speed]),
        accel=np.array([accel]),
        nows=np.array([now]),
        rel_times=rel,
        max_speed=max_speed,
    )
    samples = [
        TimedState(
            time=float(t),
            state=VehicleState(
                position=Vec2(float(x), float(y)),
                heading=actor.heading,
                speed=float(v),
                accel=accel if v > 0.0 else 0.0,
            ),
        )
        for t, x, y, v in zip(
            rollout.times[0], rollout.xs[0], rollout.ys[0], rollout.speeds[0]
        )
    ]
    return StateTrajectory(samples)


@dataclass(frozen=True)
class ConstantAccelerationPredictor:
    """The actor holds its estimated acceleration (speed clamped at 0)."""

    sample_period: float = 0.25
    max_speed: float | None = 60.0

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        trajectory = rollout_constant_accel(
            actor, actor.accel, now, horizon, self.sample_period, self.max_speed
        )
        return [
            PredictedTrajectory(
                trajectory=trajectory,
                probability=1.0,
                label="constant-acceleration",
            )
        ]

    def predict_trace(
        self,
        actors: Sequence[PerceivedActor],
        nows: np.ndarray,
        horizon: float,
    ) -> list[TraceHypothesis]:
        """One closed-form rollout covering all ticks (shared kernel)."""
        rel = sample_times(horizon, self.sample_period)
        n_ticks = len(actors)
        rollout = rollout_constant_accel_trace(
            px=np.array([actor.position.x for actor in actors]),
            py=np.array([actor.position.y for actor in actors]),
            heading=np.array([actor.heading for actor in actors]),
            speed=np.array([actor.speed for actor in actors]),
            accel=np.array([actor.accel for actor in actors]),
            nows=np.asarray(nows, dtype=float),
            rel_times=rel,
            max_speed=self.max_speed,
        )
        return [
            TraceHypothesis(
                label="constant-acceleration",
                rollout=rollout,
                probabilities=np.ones(n_ticks),
                active=np.ones(n_ticks, dtype=bool),
            )
        ]
