"""Constant-acceleration prediction.

Integrates the actor's estimated longitudinal acceleration along its
heading, clamping speed at zero (a braking actor stops; it does not
reverse).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.longitudinal import travel
from repro.dynamics.state import StateTrajectory, TimedState, VehicleState
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import PredictedTrajectory


def rollout_constant_accel(
    actor: PerceivedActor,
    accel: float,
    now: float,
    horizon: float,
    sample_period: float,
    max_speed: float | None = None,
) -> StateTrajectory:
    """Straight-line rollout at a fixed longitudinal acceleration."""
    direction = (
        Vec2.unit(actor.heading)
        if actor.speed > 1e-6
        else Vec2.unit(actor.heading)
    )
    samples = []
    t = 0.0
    while t <= horizon + 1e-9:
        distance, speed = travel(actor.speed, accel, t, max_speed)
        samples.append(
            TimedState(
                time=now + t,
                state=VehicleState(
                    position=actor.position + direction * distance,
                    heading=actor.heading,
                    speed=speed,
                    accel=accel if speed > 0.0 else 0.0,
                ),
            )
        )
        t += sample_period
    return StateTrajectory(samples)


@dataclass(frozen=True)
class ConstantAccelerationPredictor:
    """The actor holds its estimated acceleration (speed clamped at 0)."""

    sample_period: float = 0.25
    max_speed: float | None = 60.0

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        trajectory = rollout_constant_accel(
            actor, actor.accel, now, horizon, self.sample_period, self.max_speed
        )
        return [
            PredictedTrajectory(
                trajectory=trajectory,
                probability=1.0,
                label="constant-acceleration",
            )
        ]
