"""Constant-velocity prediction — the simplest single-future predictor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dynamics.state import (
    RolloutArrays,
    StateTrajectory,
    TimedState,
    VehicleState,
)
from repro.errors import ConfigurationError
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import (
    PredictedTrajectory,
    TraceHypothesis,
    sample_times,
)


@dataclass(frozen=True)
class ConstantVelocityPredictor:
    """The actor keeps its current velocity vector.

    Attributes:
        sample_period: spacing of the emitted trajectory samples (s).
    """

    sample_period: float = 0.25

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        rel = sample_times(horizon, self.sample_period)
        samples = [
            TimedState(
                time=now + t,
                state=VehicleState(
                    position=actor.position + actor.velocity * t,
                    heading=actor.heading,
                    speed=actor.speed,
                    accel=0.0,
                ),
            )
            for t in rel.tolist()
        ]
        return [
            PredictedTrajectory(
                trajectory=StateTrajectory(samples),
                probability=1.0,
                label="constant-velocity",
            )
        ]

    def predict_trace(
        self,
        actors: Sequence[PerceivedActor],
        nows: np.ndarray,
        horizon: float,
    ) -> list[TraceHypothesis]:
        """Closed-form batch rollout: every tick's future in one kernel.

        Row ``n`` is elementwise the same arithmetic as the per-tick
        :meth:`predict` at tick ``n`` — ``position + velocity * t`` over
        the shared :func:`repro.prediction.base.sample_times` grid — so
        the batch and scalar replay paths see identical futures.
        """
        rel = sample_times(horizon, self.sample_period)
        nows = np.asarray(nows, dtype=float)
        px = np.array([actor.position.x for actor in actors])
        py = np.array([actor.position.y for actor in actors])
        vx = np.array([actor.velocity.x for actor in actors])
        vy = np.array([actor.velocity.y for actor in actors])
        heading = np.array([actor.heading for actor in actors])
        speed = np.array([actor.speed for actor in actors])
        n_ticks = len(actors)
        speeds = np.broadcast_to(speed[:, None], (n_ticks, rel.size)).copy()
        rollout = RolloutArrays(
            times=nows[:, None] + rel[None, :],
            xs=px[:, None] + vx[:, None] * rel[None, :],
            ys=py[:, None] + vy[:, None] * rel[None, :],
            speeds=speeds,
            # The trajectory's final state keeps the actor's heading and
            # speed, so the coasting velocity matches StateTrajectory's.
            end_vx=np.cos(heading) * speed,
            end_vy=np.sin(heading) * speed,
        )
        return [
            TraceHypothesis(
                label="constant-velocity",
                rollout=rollout,
                probabilities=np.ones(n_ticks),
                active=np.ones(n_ticks, dtype=bool),
            )
        ]
