"""Constant-velocity prediction — the simplest single-future predictor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.state import StateTrajectory, TimedState, VehicleState
from repro.errors import ConfigurationError
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import PredictedTrajectory


@dataclass(frozen=True)
class ConstantVelocityPredictor:
    """The actor keeps its current velocity vector.

    Attributes:
        sample_period: spacing of the emitted trajectory samples (s).
    """

    sample_period: float = 0.25

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        samples = []
        t = 0.0
        while t <= horizon + 1e-9:
            samples.append(
                TimedState(
                    time=now + t,
                    state=VehicleState(
                        position=actor.position + actor.velocity * t,
                        heading=actor.heading,
                        speed=actor.speed,
                        accel=0.0,
                    ),
                )
            )
            t += self.sample_period
        return [
            PredictedTrajectory(
                trajectory=StateTrajectory(samples),
                probability=1.0,
                label="constant-velocity",
            )
        ]
