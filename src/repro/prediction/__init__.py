"""Trajectory-prediction substrate.

The online (post-deployment) Zhuyi estimator consumes "multiple future
trajectories, each with an associated probability, for each actor"
(Section 2.1). The paper leverages external predictors (MultiPath,
PredictionNet); this package provides physics-based equivalents that
exercise the same aggregation code path: constant-velocity,
constant-acceleration, and a multi-hypothesis manoeuvre predictor.
"""

from repro.prediction.base import (
    PredictedTrajectory,
    Predictor,
    TraceHypothesis,
    predict_trace_via_loop,
    sample_times,
)
from repro.prediction.constant_velocity import ConstantVelocityPredictor
from repro.prediction.constant_accel import ConstantAccelerationPredictor
from repro.prediction.maneuver import ManeuverPredictor

__all__ = [
    "PredictedTrajectory",
    "Predictor",
    "TraceHypothesis",
    "predict_trace_via_loop",
    "sample_times",
    "ConstantVelocityPredictor",
    "ConstantAccelerationPredictor",
    "ManeuverPredictor",
]
