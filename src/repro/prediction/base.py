"""Prediction interfaces.

A predictor maps one perceived actor to a set of timestamped future
trajectories with probabilities summing to one. Trajectories are absolute
— their timestamps continue the simulation clock from ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.dynamics.state import StateTrajectory
from repro.errors import EstimationError
from repro.perception.world_model import PerceivedActor


@dataclass(frozen=True)
class PredictedTrajectory:
    """One hypothesized future with its probability."""

    trajectory: StateTrajectory
    probability: float
    label: str = "hypothesis"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise EstimationError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@runtime_checkable
class Predictor(Protocol):
    """Maps a perceived actor to probabilistic future trajectories."""

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> Sequence[PredictedTrajectory]:
        """Futures for ``actor`` covering ``[now, now + horizon]``.

        Probabilities over the returned set must sum to 1 (within
        floating-point tolerance).
        """
        ...


def check_probabilities(
    predictions: Sequence[PredictedTrajectory], tolerance: float = 1e-6
) -> None:
    """Validate that prediction probabilities sum to one."""
    if not predictions:
        raise EstimationError("a predictor must return at least one trajectory")
    total = sum(prediction.probability for prediction in predictions)
    if abs(total - 1.0) > tolerance:
        raise EstimationError(
            f"prediction probabilities sum to {total}, expected 1"
        )
