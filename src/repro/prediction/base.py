"""Prediction interfaces.

A predictor maps one perceived actor to a set of timestamped future
trajectories with probabilities summing to one. Trajectories are absolute
— their timestamps continue the simulation clock from ``now``.

Two protocols live here:

* the per-tick :class:`Predictor` (``predict``) — one actor, one instant;
* the trace-batch extension (``predict_trace``) — one actor *identity*
  observed at every tick of a recorded trace, answered with
  :class:`TraceHypothesis` array rollouts covering all ticks at once.
  Predictors that do not implement it are served by
  :func:`predict_trace_via_loop`, which runs the per-tick ``predict``
  and stacks the resulting trajectories into the same array form.

Sample grids are closed-form (:func:`sample_times`): the drifting
``t += sample_period`` accumulation the predictors used to run makes the
final sample's inclusion depend on operand magnitudes, which both emits
wrong sample counts near horizon multiples and breaks the guarantee that
a batch rollout's grid equals the per-tick grid bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.dynamics.state import RolloutArrays, StateTrajectory
from repro.errors import EstimationError
from repro.perception.world_model import PerceivedActor
from repro.units import time_grid_count


def sample_times(horizon: float, sample_period: float) -> np.ndarray:
    """The closed-form prediction sample grid ``0, p, 2p, ... <= horizon``.

    Shared by every predictor (and by both their per-tick and batch
    paths): the count comes from the evaluator's
    ``floor(span / step + eps) + 1`` form and the instants are exact
    ``k * sample_period`` products, so the grid is a pure function of
    ``(horizon, sample_period)`` — no accumulation, no drift.

    Raises:
        EstimationError: on a non-positive horizon (the estimation-layer
            contract for invalid per-call inputs).
    """
    if horizon <= 0.0:
        raise EstimationError(f"horizon must be positive, got {horizon}")
    return sample_period * np.arange(time_grid_count(horizon, sample_period))


@dataclass(frozen=True)
class PredictedTrajectory:
    """One hypothesized future with its probability."""

    trajectory: StateTrajectory
    probability: float
    label: str = "hypothesis"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise EstimationError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class TraceHypothesis:
    """One hypothesis label rolled out at every tick of a trace.

    The batch counterpart of one :class:`PredictedTrajectory` per tick:
    row ``n`` of ``rollout`` is the hypothesis' future as predicted at
    tick ``n``, with the probability it carried there. ``active`` marks
    the ticks where the per-tick predictor would have emitted the
    hypothesis at all (e.g. a lane-change hypothesis only applies while
    the actor sits in an adjacent lane); inactive rows carry undefined
    rollout values and zero probability and must not be sampled.
    """

    label: str
    rollout: RolloutArrays
    probabilities: np.ndarray
    active: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.rollout.rows
            == len(self.probabilities)
            == len(self.active)
        ):
            raise EstimationError(
                f"hypothesis {self.label!r}: rollout rows, probabilities "
                "and active mask must align"
            )


@runtime_checkable
class Predictor(Protocol):
    """Maps a perceived actor to probabilistic future trajectories."""

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> Sequence[PredictedTrajectory]:
        """Futures for ``actor`` covering ``[now, now + horizon]``.

        Probabilities over the returned set must sum to 1 (within
        floating-point tolerance).
        """
        ...


def check_probabilities(
    predictions: Sequence[PredictedTrajectory], tolerance: float = 1e-6
) -> None:
    """Validate that prediction probabilities sum to one."""
    if not predictions:
        raise EstimationError("a predictor must return at least one trajectory")
    total = sum(prediction.probability for prediction in predictions)
    if abs(total - 1.0) > tolerance:
        raise EstimationError(
            f"prediction probabilities sum to {total}, expected 1"
        )


def predict_trace_via_loop(
    predictor: Predictor,
    actors: Sequence[PerceivedActor],
    nows: np.ndarray,
    horizon: float,
) -> list[TraceHypothesis] | None:
    """Default ``predict_trace``: the per-tick loop, stacked into arrays.

    Calls ``predictor.predict`` once per tick and aligns the returned
    hypotheses by label into :class:`TraceHypothesis` rows, so any
    per-tick predictor can feed the batched replay path. Alignment
    requires a structure the arrays can hold: unique labels within a
    tick, a label order consistent across ticks, and a fixed sample
    count per label. Returns ``None`` when the predictor's output is
    too ragged to batch — callers then fall back to fully per-tick
    estimation.
    """
    nows = np.asarray(nows, dtype=float)
    per_tick = [
        predictor.predict(actor, float(now), horizon)
        for actor, now in zip(actors, nows)
    ]
    n_ticks = len(per_tick)
    labels: list[str] = []
    entries: dict[str, dict[int, PredictedTrajectory]] = {}
    for n, predictions in enumerate(per_tick):
        previous = -1
        seen: set[str] = set()
        for prediction in predictions:
            label = prediction.label
            if label in seen:
                return None  # duplicate labels cannot align
            seen.add(label)
            if label not in entries:
                labels.append(label)
                entries[label] = {}
            # Entry order must be consistent across ticks: Equation 4's
            # reductions are evaluated in entry order, so a batch that
            # reordered hypotheses would aggregate differently.
            position = labels.index(label)
            if position <= previous:
                return None
            previous = position
            entries[label][n] = prediction

    hypotheses: list[TraceHypothesis] = []
    for label in labels:
        by_tick = entries[label]
        first = next(iter(by_tick.values()))
        n_samples = len(first.trajectory)
        if any(
            len(prediction.trajectory) != n_samples
            for prediction in by_tick.values()
        ):
            return None  # ragged sample counts cannot stack
        times = np.zeros((n_ticks, n_samples))
        xs = np.zeros((n_ticks, n_samples))
        ys = np.zeros((n_ticks, n_samples))
        speeds = np.zeros((n_ticks, n_samples))
        end_vx = np.zeros(n_ticks)
        end_vy = np.zeros(n_ticks)
        probabilities = np.zeros(n_ticks)
        active = np.zeros(n_ticks, dtype=bool)
        for n, prediction in by_tick.items():
            t, x, y, v, end_velocity = prediction.trajectory.knot_arrays()
            times[n] = t
            xs[n] = x
            ys[n] = y
            speeds[n] = v
            end_vx[n], end_vy[n] = end_velocity
            probabilities[n] = prediction.probability
            active[n] = True
        hypotheses.append(
            TraceHypothesis(
                label=label,
                rollout=RolloutArrays(
                    times=times,
                    xs=xs,
                    ys=ys,
                    speeds=speeds,
                    end_vx=end_vx,
                    end_vy=end_vy,
                ),
                probabilities=probabilities,
                active=active,
            )
        )
    return hypotheses
