"""Multi-hypothesis manoeuvre prediction.

Emits several physically plausible futures per actor — keep velocity,
gentle brake, hard brake, accelerate, and (when a road is supplied and
the actor sits in a lane adjacent to a target lane) a lane-change
hypothesis with a smooth lateral profile. Probabilities are configurable
and renormalized over the hypotheses that apply.

This stands in for the learned predictors the paper leverages
(MultiPath, PredictionNet): Equation 4 only needs a weighted set of
futures, which this produces from the perceived state alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dynamics.longitudinal import travel
from repro.dynamics.profiles import smoothstep, smoothstep_slope
from repro.dynamics.state import StateTrajectory, TimedState, VehicleState
from repro.errors import ConfigurationError
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import PredictedTrajectory, check_probabilities
from repro.prediction.constant_accel import rollout_constant_accel
from repro.road.lane import FrenetPoint
from repro.road.track import Road


@dataclass(frozen=True)
class ManeuverPredictor:
    """Physics-based multi-hypothesis predictor.

    Attributes:
        sample_period: spacing of emitted trajectory samples (s).
        gentle_brake: deceleration of the gentle-brake hypothesis (m/s^2).
        hard_brake: deceleration of the hard-brake hypothesis (m/s^2).
        accelerate: acceleration of the speed-up hypothesis (m/s^2).
        lane_change_duration: manoeuvre time of the lane-change
            hypothesis (s).
        road: optional road; enables the lane-change hypothesis toward
            ``target_lane``.
        target_lane: lane index a lane-change hypothesis steers into
            (typically the ego's lane); ``None`` disables it.
        weights: base probability of each hypothesis by label; missing
            labels get zero. Renormalized over applicable hypotheses.
    """

    sample_period: float = 0.25
    gentle_brake: float = 3.0
    hard_brake: float = 6.0
    accelerate: float = 1.5
    lane_change_duration: float = 3.0
    road: Road | None = None
    target_lane: int | None = None
    max_speed: float = 60.0
    weights: dict[str, float] = field(
        default_factory=lambda: {
            "keep": 0.5,
            "gentle-brake": 0.2,
            "hard-brake": 0.1,
            "accelerate": 0.1,
            "lane-change": 0.1,
        }
    )

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")
        if min(self.gentle_brake, self.hard_brake, self.accelerate) <= 0.0:
            raise ConfigurationError("manoeuvre magnitudes must be positive")
        if self.lane_change_duration <= 0.0:
            raise ConfigurationError("lane-change duration must be positive")
        if any(weight < 0.0 for weight in self.weights.values()):
            raise ConfigurationError("hypothesis weights must be non-negative")

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        hypotheses: list[tuple[str, StateTrajectory]] = [
            (
                "keep",
                rollout_constant_accel(
                    actor, 0.0, now, horizon, self.sample_period, self.max_speed
                ),
            ),
            (
                "gentle-brake",
                rollout_constant_accel(
                    actor,
                    -self.gentle_brake,
                    now,
                    horizon,
                    self.sample_period,
                    self.max_speed,
                ),
            ),
            (
                "hard-brake",
                rollout_constant_accel(
                    actor,
                    -self.hard_brake,
                    now,
                    horizon,
                    self.sample_period,
                    self.max_speed,
                ),
            ),
            (
                "accelerate",
                rollout_constant_accel(
                    actor,
                    self.accelerate,
                    now,
                    horizon,
                    self.sample_period,
                    self.max_speed,
                ),
            ),
        ]
        lane_change = self._lane_change_rollout(actor, now, horizon)
        if lane_change is not None:
            hypotheses.append(("lane-change", lane_change))

        raw = [
            (label, trajectory, self.weights.get(label, 0.0))
            for label, trajectory in hypotheses
        ]
        total = sum(weight for _, _, weight in raw)
        if total <= 0.0:
            raise ConfigurationError("all hypothesis weights are zero")
        predictions = [
            PredictedTrajectory(
                trajectory=trajectory,
                probability=weight / total,
                label=label,
            )
            for label, trajectory, weight in raw
            if weight > 0.0
        ]
        check_probabilities(predictions)
        return predictions

    def _lane_change_rollout(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> StateTrajectory | None:
        """Lane change toward ``target_lane`` at constant speed, or None."""
        if self.road is None or self.target_lane is None:
            return None
        start = self.road.to_frenet(actor.position)
        current_lane = self.road.lane_of_offset(start.d)
        if current_lane == self.target_lane:
            return None
        if abs(current_lane - self.target_lane) > 1:
            return None  # only adjacent-lane changes are hypothesized
        target_d = self.road.lane_offset(self.target_lane)
        samples = []
        t = 0.0
        while t <= horizon + 1e-9:
            distance, speed = travel(actor.speed, 0.0, t, self.max_speed)
            progress = smoothstep(t / self.lane_change_duration)
            d = start.d + (target_d - start.d) * progress
            s = start.s + distance
            position = self.road.to_world(FrenetPoint(s, d))
            heading = self.road.heading_at(s)
            # Add the lateral component to the heading during the manoeuvre.
            if 0.0 < t < self.lane_change_duration and speed > 1e-6:
                lateral_rate = (
                    (target_d - start.d)
                    * smoothstep_slope(t / self.lane_change_duration)
                    / self.lane_change_duration
                )
                heading += math.atan2(lateral_rate, speed)
            samples.append(
                TimedState(
                    time=now + t,
                    state=VehicleState(
                        position=position,
                        heading=heading,
                        speed=speed,
                        accel=0.0,
                    ),
                )
            )
            t += self.sample_period
        return StateTrajectory(samples)
