"""Multi-hypothesis manoeuvre prediction.

Emits several physically plausible futures per actor — keep velocity,
gentle brake, hard brake, accelerate, and (when a road is supplied and
the actor sits in a lane adjacent to a target lane) a lane-change
hypothesis with a smooth lateral profile. Probabilities are configurable
and renormalized over the hypotheses that apply.

This stands in for the learned predictors the paper leverages
(MultiPath, PredictionNet): Equation 4 only needs a weighted set of
futures, which this produces from the perceived state alone.

Every hypothesis is rolled out by an array kernel shared between the
per-tick :meth:`ManeuverPredictor.predict` and the trace-batch
``predict_trace`` — one ``arange``-grid rollout per hypothesis covering
all requested ticks at once — so the batched replay path sees exactly
the per-tick futures, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dynamics.longitudinal import travel_arrays
from repro.dynamics.profiles import (
    smoothstep_arrays,
    smoothstep_slope_arrays,
)
from repro.dynamics.state import (
    RolloutArrays,
    StateTrajectory,
    TimedState,
    VehicleState,
)
from repro.errors import ConfigurationError
from repro.geometry.vec import Vec2
from repro.perception.world_model import PerceivedActor
from repro.prediction.base import (
    PredictedTrajectory,
    TraceHypothesis,
    check_probabilities,
    sample_times,
)
from repro.prediction.constant_accel import (
    rollout_constant_accel,
    rollout_constant_accel_trace,
)
from repro.road.track import Road


@dataclass(frozen=True)
class _LaneChangeArrays:
    """Batched lane-change rollouts (only ``active`` rows are defined)."""

    active: np.ndarray  #: (N,) bool — adjacent-lane ticks
    rollout: RolloutArrays  #: (N, S) arrays; inactive rows are zeros
    headings: np.ndarray  #: (N, S) per-sample headings of active rows


@dataclass(frozen=True)
class ManeuverPredictor:
    """Physics-based multi-hypothesis predictor.

    Attributes:
        sample_period: spacing of emitted trajectory samples (s).
        gentle_brake: deceleration of the gentle-brake hypothesis (m/s^2).
        hard_brake: deceleration of the hard-brake hypothesis (m/s^2).
        accelerate: acceleration of the speed-up hypothesis (m/s^2).
        lane_change_duration: manoeuvre time of the lane-change
            hypothesis (s).
        road: optional road; enables the lane-change hypothesis toward
            ``target_lane``.
        target_lane: lane index a lane-change hypothesis steers into
            (typically the ego's lane); ``None`` disables it.
        max_speed: speed cap applied to every hypothesis rollout (m/s);
            must be positive.
        weights: base probability of each hypothesis by label; missing
            labels get zero. Renormalized over applicable hypotheses.
    """

    sample_period: float = 0.25
    gentle_brake: float = 3.0
    hard_brake: float = 6.0
    accelerate: float = 1.5
    lane_change_duration: float = 3.0
    road: Road | None = None
    target_lane: int | None = None
    max_speed: float = 60.0
    weights: dict[str, float] = field(
        default_factory=lambda: {
            "keep": 0.5,
            "gentle-brake": 0.2,
            "hard-brake": 0.1,
            "accelerate": 0.1,
            "lane-change": 0.1,
        }
    )

    def __post_init__(self) -> None:
        if self.sample_period <= 0.0:
            raise ConfigurationError("sample period must be positive")
        if min(self.gentle_brake, self.hard_brake, self.accelerate) <= 0.0:
            raise ConfigurationError("manoeuvre magnitudes must be positive")
        if self.lane_change_duration <= 0.0:
            raise ConfigurationError("lane-change duration must be positive")
        if self.max_speed <= 0.0:
            raise ConfigurationError(
                f"max speed must be positive, got {self.max_speed}"
            )
        if any(weight < 0.0 for weight in self.weights.values()):
            raise ConfigurationError("hypothesis weights must be non-negative")

    #: Straight-line hypothesis labels in emission order, with the
    #: signed acceleration each applies.
    def _straight_hypotheses(self) -> list[tuple[str, float]]:
        return [
            ("keep", 0.0),
            ("gentle-brake", -self.gentle_brake),
            ("hard-brake", -self.hard_brake),
            ("accelerate", self.accelerate),
        ]

    def predict(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> list[PredictedTrajectory]:
        hypotheses: list[tuple[str, StateTrajectory]] = [
            (
                label,
                rollout_constant_accel(
                    actor, accel, now, horizon, self.sample_period, self.max_speed
                ),
            )
            for label, accel in self._straight_hypotheses()
        ]
        lane_change = self._lane_change_rollout(actor, now, horizon)
        if lane_change is not None:
            hypotheses.append(("lane-change", lane_change))

        raw = [
            (label, trajectory, self.weights.get(label, 0.0))
            for label, trajectory in hypotheses
        ]
        total = sum(weight for _, _, weight in raw)
        if total <= 0.0:
            raise ConfigurationError("all hypothesis weights are zero")
        predictions = [
            PredictedTrajectory(
                trajectory=trajectory,
                probability=weight / total,
                label=label,
            )
            for label, trajectory, weight in raw
            if weight > 0.0
        ]
        check_probabilities(predictions)
        return predictions

    def predict_trace(
        self,
        actors: Sequence[PerceivedActor],
        nows: np.ndarray,
        horizon: float,
    ) -> list[TraceHypothesis]:
        """All hypotheses over all ticks, one array rollout per hypothesis.

        Row ``n`` of each hypothesis equals the per-tick
        :meth:`predict` output at tick ``n`` bit for bit (shared rollout
        kernels, shared closed-form sample grid, same probability
        renormalization over the hypotheses applicable at that tick).
        """
        rel = sample_times(horizon, self.sample_period)
        nows = np.asarray(nows, dtype=float)
        n_ticks = len(actors)
        px = np.array([actor.position.x for actor in actors])
        py = np.array([actor.position.y for actor in actors])
        heading = np.array([actor.heading for actor in actors])
        speed = np.array([actor.speed for actor in actors])

        lane_change = self._lane_change_arrays(px, py, speed, nows, rel)
        lc_active = (
            lane_change.active
            if lane_change is not None
            else np.zeros(n_ticks, dtype=bool)
        )
        lc_weight = self.weights.get("lane-change", 0.0)

        # Per-tick renormalization totals, summed in emission order
        # exactly like the per-tick loop does.
        straight_total = 0.0
        for label, _ in self._straight_hypotheses():
            straight_total += self.weights.get(label, 0.0)
        full_total = straight_total + lc_weight
        if np.any(lc_active) and full_total <= 0.0:
            raise ConfigurationError("all hypothesis weights are zero")
        if not np.all(lc_active) and straight_total <= 0.0:
            raise ConfigurationError("all hypothesis weights are zero")
        totals = np.where(lc_active, full_total, straight_total)

        hypotheses: list[TraceHypothesis] = []
        for label, accel in self._straight_hypotheses():
            weight = self.weights.get(label, 0.0)
            if weight <= 0.0:
                continue
            rollout = rollout_constant_accel_trace(
                px=px,
                py=py,
                heading=heading,
                speed=speed,
                accel=np.full(n_ticks, accel),
                nows=nows,
                rel_times=rel,
                max_speed=self.max_speed,
            )
            hypotheses.append(
                TraceHypothesis(
                    label=label,
                    rollout=rollout,
                    probabilities=weight / totals,
                    active=np.ones(n_ticks, dtype=bool),
                )
            )
        if lane_change is not None and lc_weight > 0.0 and np.any(lc_active):
            hypotheses.append(
                TraceHypothesis(
                    label="lane-change",
                    rollout=lane_change.rollout,
                    probabilities=np.where(lc_active, lc_weight / totals, 0.0),
                    active=lc_active,
                )
            )
        return hypotheses

    def _lane_change_arrays(
        self,
        px: np.ndarray,
        py: np.ndarray,
        speed: np.ndarray,
        nows: np.ndarray,
        rel: np.ndarray,
    ) -> _LaneChangeArrays | None:
        """Batched lane-change rollouts toward ``target_lane``.

        The array kernel behind both prediction paths: constant-speed
        travel along the road with a smoothstep lateral blend from the
        actor's current offset to the target lane's, mapped back to
        world coordinates through the road's batch kernels. Ticks where
        the actor is not in a lane adjacent to the target are inactive.
        """
        if self.road is None or self.target_lane is None:
            return None
        start_s, start_d = self.road.to_frenet_batch(px, py)
        raw = start_d / self.road.lane_width + (self.road.lane_count - 1) / 2.0
        current_lane = np.clip(
            np.rint(raw), 0, self.road.lane_count - 1
        ).astype(int)
        active = (current_lane != self.target_lane) & (
            np.abs(current_lane - self.target_lane) <= 1
        )
        n_ticks, n_samples = px.size, rel.size
        times = nows[:, None] + rel[None, :]
        xs = np.zeros((n_ticks, n_samples))
        ys = np.zeros((n_ticks, n_samples))
        speeds = np.zeros((n_ticks, n_samples))
        headings = np.zeros((n_ticks, n_samples))
        end_vx = np.zeros(n_ticks)
        end_vy = np.zeros(n_ticks)
        if np.any(active):
            rows = np.flatnonzero(active)
            target_d = self.road.lane_offset(self.target_lane)
            distance, row_speeds = travel_arrays(
                speed[rows, None], 0.0, rel[None, :], self.max_speed
            )
            progress = smoothstep_arrays(rel / self.lane_change_duration)
            d = start_d[rows, None] + (
                target_d - start_d[rows, None]
            ) * progress[None, :]
            s = start_s[rows, None] + distance
            row_xs, row_ys = self.road.to_world_batch(s, d)
            row_headings = self.road.heading_at_batch(s)
            # Add the lateral component to the heading during the
            # manoeuvre (matching the per-sample condition of the
            # scalar rollout).
            in_maneuver = (
                (0.0 < rel[None, :])
                & (rel[None, :] < self.lane_change_duration)
                & (row_speeds > 1e-6)
            )
            slope = smoothstep_slope_arrays(rel / self.lane_change_duration)
            lateral_rate = (
                (target_d - start_d[rows, None])
                * slope[None, :]
                / self.lane_change_duration
            )
            row_headings = np.where(
                in_maneuver,
                row_headings + np.arctan2(lateral_rate, row_speeds),
                row_headings,
            )
            xs[rows] = row_xs
            ys[rows] = row_ys
            speeds[rows] = row_speeds
            headings[rows] = row_headings
            end_vx[rows] = np.cos(row_headings[:, -1]) * row_speeds[:, -1]
            end_vy[rows] = np.sin(row_headings[:, -1]) * row_speeds[:, -1]
        return _LaneChangeArrays(
            active=active,
            rollout=RolloutArrays(
                times=times,
                xs=xs,
                ys=ys,
                speeds=speeds,
                end_vx=end_vx,
                end_vy=end_vy,
            ),
            headings=headings,
        )

    def _lane_change_rollout(
        self, actor: PerceivedActor, now: float, horizon: float
    ) -> StateTrajectory | None:
        """Lane change toward ``target_lane`` at constant speed, or None.

        The per-tick view of :meth:`_lane_change_arrays`: one call into
        the shared kernel, wrapped back into a :class:`StateTrajectory`.
        """
        rel = sample_times(horizon, self.sample_period)
        arrays = self._lane_change_arrays(
            px=np.array([actor.position.x]),
            py=np.array([actor.position.y]),
            speed=np.array([actor.speed]),
            nows=np.array([now]),
            rel=rel,
        )
        if arrays is None or not arrays.active[0]:
            return None
        rollout = arrays.rollout
        samples = [
            TimedState(
                time=float(t),
                state=VehicleState(
                    position=Vec2(float(x), float(y)),
                    heading=float(h),
                    speed=float(v),
                    accel=0.0,
                ),
            )
            for t, x, y, v, h in zip(
                rollout.times[0],
                rollout.xs[0],
                rollout.ys[0],
                rollout.speeds[0],
                arrays.headings[0],
            )
        ]
        return StateTrajectory(samples)
