"""Shared staged-fsync / atomic-rename write helpers.

Durability-critical modules (``repro.store``, ``repro.batch``) never
open their targets with a bare ``open(..., "w")`` — that is the IO005
lint contract (see ``repro.lint``). A kill between ``open`` and the
first flush would otherwise publish a torn or empty file under the
final name, which resume/reload logic then has to distinguish from a
legitimate partial. Every write instead goes through one of these
helpers, which share a single discipline:

* data reaches the device (``flush`` + ``fsync``) *before* the file
  appears under its final name (``os.replace``), and
* the directory entry itself is synced afterwards, so the rename
  survives power loss — with ``OSError`` tolerance for filesystems
  that cannot fsync a directory.

The helpers are deliberately tiny: they are the vocabulary the IO005
rule checks against, not a framework.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory entry.

    Makes a just-committed rename durable. Filesystems (or platforms)
    that cannot open/fsync a directory keep the rename's normal
    crash-consistency semantics — hence the ``OSError`` tolerance.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def fsynced_file(path: str | Path, mode: str = "w") -> Iterator[IO]:
    """Open ``path`` for writing; flush + fsync before a clean close.

    The staged-write primitive: callers point it at a staging path (a
    temp file or a not-yet-renamed bundle directory entry) and commit
    with ``os.replace``/``os.rename`` afterwards, knowing the bytes
    are already on the device. An exception inside the block closes
    the handle without fsync — the staging path is garbage either way.
    """
    with Path(path).open(mode) as handle:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically publish ``text`` at ``path`` (tmp + fsync + rename).

    Readers observe either the previous complete content or the new
    complete content, never a prefix — the contract heartbeat sidecars
    and index rewrites rely on.
    """
    final = Path(path)
    tmp = final.with_name(f"{final.name}.tmp-{os.getpid()}")
    with fsynced_file(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, final)
    fsync_dir(final.parent)


def atomic_create_stream(path: str | Path, first_line: str) -> IO[str]:
    """Atomically create ``path`` containing ``first_line``, open for append.

    The streaming-file creation primitive: the header line is staged,
    fsynced and renamed into place before the returned append handle
    exists, so a file visible under ``path`` always carries a complete
    header — kill-during-create leaves either no file or a valid
    zero-record stream, never a torn header. ``first_line`` should
    include its trailing newline.
    """
    final = Path(path)
    atomic_write_text(final, first_line)
    return final.open("a")
