#!/usr/bin/env python3
"""Check that documentation code fences at least parse.

Walks every ``*.md`` file under ``docs/`` plus the README, extracts
fenced code blocks tagged ``python`` or ``bash``, and validates them:
``python`` fences must byte-compile, ``bash`` fences must pass
``bash -n``. This keeps copy-pasteable examples honest as the CLI and
API evolve — a renamed flag in a doc example won't parse-fail, but a
syntax error, an unclosed quote or a half-edited snippet will.

Used two ways: as the CI docs smoke job (``python tools/check_doc_fences.py``)
and imported by ``tests/unit/test_docs.py`` so tier-1 enforces the
same thing locally.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fence languages we know how to validate; others are ignored.
CHECKED_LANGUAGES = ("python", "bash")

_FENCE = re.compile(
    r"^```(?P<lang>[\w+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files whose fences are checked."""
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def extract_fences(text: str) -> list[tuple[str, int, str]]:
    """All fenced blocks as (language, start line, body) triples."""
    fences = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        fences.append((match.group("lang"), line, match.group("body")))
    return fences


def check_fence(lang: str, body: str) -> str | None:
    """Validate one fence body; returns an error message or ``None``."""
    if lang == "python":
        try:
            compile(body, "<fence>", "exec")
        except SyntaxError as exc:
            return f"python fence does not compile: {exc}"
        return None
    if lang == "bash":
        proc = subprocess.run(
            ["bash", "-n"],
            input=body,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            return f"bash -n failed: {proc.stderr.strip()}"
        return None
    return None


def check_file(path: Path) -> list[str]:
    """All fence errors in one markdown file."""
    errors = []
    checked = 0
    for lang, line, body in extract_fences(path.read_text()):
        if lang not in CHECKED_LANGUAGES:
            continue
        checked += 1
        error = check_fence(lang, body)
        if error:
            errors.append(f"{path.relative_to(REPO_ROOT)}:{line}: {error}")
    if not errors:
        print(f"  {path.relative_to(REPO_ROOT)}: {checked} fence(s) ok")
    return errors


def main() -> int:
    files = doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    print(f"checking {len(files)} documentation file(s):")
    errors = [error for path in files for error in check_file(path)]
    for error in errors:
        print(error, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
