#!/usr/bin/env python
"""Standalone entry point for the determinism & contract linter.

Equivalent to ``repro lint``; exists so CI and pre-commit hooks can
run the linter without installing the package (it bootstraps
``src/`` onto ``sys.path`` when needed)::

    python tools/reprolint.py --strict --out lint_findings.json

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import sys
from pathlib import Path

try:
    from repro.lint.cli import main
except ImportError:  # run from a bare checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
